//===- tests/codegen_test.cpp - CUDA emitter structural tests ---------------===//

#include "codegen/CudaEmitter.h"

#include "core/IlpScheduler.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

struct Compiled {
  StreamGraph G;
  SteadyState SS;
  ExecutionConfig Config;
  GpuSteadyState GSS;
  SwpSchedule Schedule;
};

Compiled compile(StreamGraph G, int Pmax = 4) {
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  EXPECT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);
  SchedulerOptions SO;
  SO.Pmax = Pmax;
  auto R = scheduleSwp(G, *SS, *Config, GSS, SO);
  EXPECT_TRUE(R.has_value());
  return {std::move(G), std::move(*SS), std::move(*Config), GSS,
          std::move(R->Schedule)};
}

int countOccurrences(const std::string &Haystack, const std::string &Needle) {
  int Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

} // namespace

TEST(CudaEmitter, SwitchPerSm) {
  Compiled C = compile(makeFig4Graph(), 4);
  std::string Src = emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  EXPECT_NE(Src.find("__global__ void streamit_swp_kernel"),
            std::string::npos);
  EXPECT_NE(Src.find("switch (blockIdx.x)"), std::string::npos);
  // One case per SM (paper Section IV-C's schema).
  for (int P = 0; P < C.Schedule.Pmax; ++P)
    EXPECT_NE(Src.find("case " + std::to_string(P) + ":"),
              std::string::npos);
}

TEST(CudaEmitter, StagingPredicates) {
  Compiled C = compile(makeScalePipeline(), 2);
  std::string Src = emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  // Every scheduled instance runs behind its stage predicate.
  EXPECT_GE(countOccurrences(Src, "int j = it -"),
            static_cast<int>(C.Schedule.Instances.size()));
  EXPECT_NE(Src.find("if (j >= 0"), std::string::npos);
}

TEST(CudaEmitter, DeviceWorkFunctionsPerFilter) {
  Compiled C = compile(makeFig4Graph(), 2);
  std::string Src = emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  EXPECT_NE(Src.find("__device__ void work_0_A"), std::string::npos);
  EXPECT_NE(Src.find("__device__ void work_1_B"), std::string::npos);
}

TEST(CudaEmitter, ShuffledIndexMathEmitted) {
  Compiled C = compile(makeFig4Graph(), 2);
  CudaEmitOptions Opt;
  Opt.Layout = LayoutKind::Shuffled;
  std::string Src =
      emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule, Opt);
  // The Eq. 10/11 cluster arithmetic: 128 * n + (t/128)*128*rate + t%128.
  EXPECT_NE(Src.find("128L * n"), std::string::npos);
  EXPECT_NE(Src.find("(t % 128L)"), std::string::npos);
}

TEST(CudaEmitter, SequentialLayoutOmitsShuffle) {
  Compiled C = compile(makeFig4Graph(), 2);
  CudaEmitOptions Opt;
  Opt.Layout = LayoutKind::Sequential;
  std::string Src =
      emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule, Opt);
  EXPECT_EQ(Src.find("128L * n"), std::string::npos);
}

TEST(CudaEmitter, HostDriverAndLaunch) {
  Compiled C = compile(makeScalePipeline(), 2);
  std::string Src = emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  EXPECT_NE(Src.find("void run_streamit_program"), std::string::npos);
  EXPECT_NE(Src.find("streamit_swp_kernel<<<grid, block>>>"),
            std::string::npos);
  EXPECT_NE(Src.find("cudaMalloc"), std::string::npos);
  EXPECT_NE(Src.find("dim3 grid(" +
                     std::to_string(C.Schedule.Pmax) + ")"),
            std::string::npos);
}

TEST(CudaEmitter, HostDriverOptional) {
  Compiled C = compile(makeScalePipeline(), 2);
  CudaEmitOptions Opt;
  Opt.EmitHostDriver = false;
  std::string Src =
      emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule, Opt);
  EXPECT_EQ(Src.find("run_streamit_program"), std::string::npos);
}

TEST(CudaEmitter, CoarseningLoopMatchesFactor) {
  Compiled C = compile(makeScalePipeline(), 2);
  CudaEmitOptions Opt;
  Opt.Coarsening = 8;
  std::string Src =
      emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule, Opt);
  EXPECT_NE(Src.find("for (int c = 0; c < 8; ++c)"), std::string::npos);
}

TEST(CudaEmitter, SplitterJoinerMoveFunctions) {
  Compiled C = compile(makeDupSplitGraph(), 2);
  std::string Src = emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  EXPECT_NE(Src.find("__device__ void move_"), std::string::npos);
}

TEST(CudaEmitter, FieldConstantsEmitted) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeMovingSum("MS", 4)));
  Parts.push_back(filterStream(makeOffsetFloat("Off", 1.0)));
  Compiled C = compile(flatten(*pipelineStream(std::move(Parts))), 2);
  std::string Src = emitCudaSource(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  EXPECT_NE(Src.find("__syncthreads()"), std::string::npos);
  // Balanced braces: a crude well-formedness check on the emitted text.
  EXPECT_EQ(countOccurrences(Src, "{"), countOccurrences(Src, "}"));
}
