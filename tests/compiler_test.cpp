//===- tests/compiler_test.cpp - End-to-end compilation tests ---------------===//

#include "core/Compiler.h"

#include "benchmarks/Registry.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::bench;
using namespace sgpu::testing;

namespace {

CompileOptions fastOptions(Strategy S = Strategy::Swp, int Coarsen = 8) {
  CompileOptions O;
  O.Strat = S;
  O.Coarsening = Coarsen;
  O.Sched.Pmax = 8;
  O.Sched.TimeBudgetSeconds = 0.5;
  return O;
}

} // namespace

TEST(Compiler, SwpEndToEndOnSmallGraph) {
  StreamGraph G = makeFig4Graph();
  auto R = compileForGpu(G, fastOptions());
  ASSERT_TRUE(R.has_value());
  EXPECT_GT(R->Speedup, 0.0);
  EXPECT_GT(R->GpuCyclesPerBaseIteration, 0.0);
  EXPECT_GT(R->CpuCyclesPerBaseIteration, 0.0);
  EXPECT_GT(R->BufferBytes, 0);
  EXPECT_EQ(R->Layout, LayoutKind::Shuffled);
}

TEST(Compiler, RejectsUnbalancedGraphs) {
  FilterBuilder BL("L", TokenType::Int, TokenType::Int);
  BL.setRates(1, 1);
  BL.push(BL.pop());
  FilterBuilder BR("R", TokenType::Int, TokenType::Int);
  BR.setRates(2, 1);
  BR.push(BR.pop());
  BR.popDiscard();
  std::vector<StreamPtr> Branches;
  Branches.push_back(filterStream(BL.build()));
  Branches.push_back(filterStream(BR.build()));
  StreamGraph G = flatten(*duplicateSplitJoin(std::move(Branches), {1, 1}));
  EXPECT_FALSE(compileForGpu(G, fastOptions()).has_value());
}

TEST(Compiler, CoarseningAmortizesLaunches) {
  StreamGraph G1 = makeScalePipeline();
  auto Swp1 = compileForGpu(G1, fastOptions(Strategy::Swp, 1));
  StreamGraph G8 = makeScalePipeline();
  auto Swp8 = compileForGpu(G8, fastOptions(Strategy::Swp, 8));
  ASSERT_TRUE(Swp1 && Swp8);
  // The paper's Figure 11 shape: coarsening never hurts, usually helps.
  EXPECT_GE(Swp8->Speedup, Swp1->Speedup * 0.999);
}

TEST(Compiler, CoalescingBeatsNoCoalescing) {
  // Fig. 10's core claim on a multirate graph (pop rate > 1).
  StreamGraph A = makeFig4Graph();
  auto Swp = compileForGpu(A, fastOptions(Strategy::Swp));
  StreamGraph B = makeFig4Graph();
  auto Nc = compileForGpu(B, fastOptions(Strategy::SwpNoCoalesce));
  ASSERT_TRUE(Swp && Nc);
  EXPECT_GE(Swp->Speedup, Nc->Speedup);
}

TEST(Compiler, SerialSchemeCompiles) {
  StreamGraph G = makeDupSplitGraph();
  auto R = compileForGpu(G, fastOptions(Strategy::Serial));
  ASSERT_TRUE(R.has_value());
  EXPECT_GT(R->Speedup, 0.0);
  EXPECT_EQ(R->Strat, Strategy::Serial);
}

TEST(Compiler, SwpBeatsSerialOnPipelines) {
  // A deep pipeline of balanced filters is SWP's home turf: the serial
  // scheme pays one kernel launch per filter per batch.
  std::vector<StreamPtr> Parts;
  for (int I = 0; I < 12; ++I)
    Parts.push_back(
        filterStream(makeScaleInt("Stage" + std::to_string(I), 3)));
  StreamGraph G1 = flatten(*pipelineStream(std::move(Parts)));
  auto Swp = compileForGpu(G1, fastOptions(Strategy::Swp));

  std::vector<StreamPtr> Parts2;
  for (int I = 0; I < 12; ++I)
    Parts2.push_back(
        filterStream(makeScaleInt("Stage" + std::to_string(I), 3)));
  StreamGraph G2 = flatten(*pipelineStream(std::move(Parts2)));
  auto Ser = compileForGpu(G2, fastOptions(Strategy::Serial));

  ASSERT_TRUE(Swp && Ser);
  EXPECT_GT(Swp->Speedup, Ser->Speedup);
}

class BenchmarkCompile : public ::testing::TestWithParam<BenchmarkSpec> {};

TEST_P(BenchmarkCompile, SwpCompilesWithVerifiedSchedule) {
  const BenchmarkSpec &Spec = GetParam();
  StreamGraph G = flatten(*Spec.Build());
  auto R = compileForGpu(G, fastOptions());
  ASSERT_TRUE(R.has_value()) << Spec.Name;
  EXPECT_GT(R->Speedup, 0.0);
  EXPECT_GT(R->SchedStats.FinalII, 0.0);
  EXPECT_GE(R->SchedStats.FinalII, R->SchedStats.MII);
  EXPECT_EQ(R->Schedule.Instances.size(),
            static_cast<size_t>(R->GSS.totalInstances()));
}

INSTANTIATE_TEST_SUITE_P(
    TableI, BenchmarkCompile, ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkSpec> &Info) {
      return Info.param.Name;
    });
