//===- tests/core_schedule_test.cpp - ILP formulation & scheduler tests -----===//

#include "core/IlpScheduler.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

struct Prepared {
  StreamGraph G;
  SteadyState SS;
  ExecutionConfig Config;
  GpuSteadyState GSS;
};

Prepared prepare(StreamGraph G) {
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  EXPECT_TRUE(Config.has_value());
  GpuSteadyState GSS = computeGpuSteadyState(SS->repetitions(),
                                             Config->Threads);
  return {std::move(G), std::move(*SS), std::move(*Config), GSS};
}

} // namespace

TEST(IlpFormulation, VariableAndConstraintCounts) {
  Prepared P = prepare(makeFig4Graph());
  int Pmax = 4;
  auto M = buildSwpIlp(P.G, P.SS, P.Config, P.GSS, Pmax, /*T=*/1e9,
                       /*MaxStages=*/8);
  ASSERT_TRUE(M.has_value());
  int64_t Insts = P.GSS.totalInstances();
  // w per (instance, SM) + o + f per instance + one g per dependence.
  EXPECT_EQ(M->LP.numVars(),
            Insts * Pmax + 2 * Insts +
                static_cast<int64_t>(M->Deps.size()));
  // (1) per instance + (2) per SM + (7) 2P per dep + (8) 2 per dep.
  EXPECT_EQ(M->LP.numConstraints(),
            Insts + Pmax +
                static_cast<int64_t>(M->Deps.size()) * (2 * Pmax + 2));
}

TEST(IlpFormulation, InfeasibleWhenDelayExceedsII) {
  Prepared P = prepare(makeFig4Graph());
  EXPECT_FALSE(
      buildSwpIlp(P.G, P.SS, P.Config, P.GSS, 4, /*T=*/0.5, 8).has_value());
}

TEST(IlpFormulation, EncodeDecodeRoundTrip) {
  Prepared P = prepare(makeFig4Graph());
  double T = 4.0 * computeResMII(P.Config, P.GSS, 4);
  auto M = buildSwpIlp(P.G, P.SS, P.Config, P.GSS, 4, T, 8);
  ASSERT_TRUE(M.has_value());
  auto Heur = buildHeuristicSchedule(P.G, P.SS, P.Config, P.GSS, 4, T, 8);
  ASSERT_TRUE(Heur.has_value());
  std::vector<double> X = M->encode(*Heur);
  EXPECT_TRUE(M->LP.isFeasible(X, 1e-5))
      << "a verified heuristic schedule must satisfy the paper's ILP";
  SwpSchedule Back = M->decode(X);
  for (size_t I = 0; I < Back.Instances.size(); ++I) {
    const ScheduledInstance &A = Back.Instances[I];
    const ScheduledInstance &B = Heur->instance(A.Node, A.K);
    EXPECT_EQ(A.Sm, B.Sm);
    EXPECT_EQ(A.F, B.F);
    EXPECT_NEAR(A.O, B.O, 1e-9);
  }
}

TEST(ResMII, MatchesWorkOverProcessors) {
  ExecutionConfig C;
  C.Delay = {10.0, 20.0};
  GpuSteadyState GSS;
  GSS.Instances = {3, 2};
  // Total work 70 over 4 SMs = 17.5, but one instance takes 20.
  EXPECT_DOUBLE_EQ(computeResMII(C, GSS, 4), 20.0);
  EXPECT_DOUBLE_EQ(computeResMII(C, GSS, 2), 35.0);
}

TEST(HeuristicScheduler, ProducesVerifiableSchedule) {
  Prepared P = prepare(makeFig4Graph());
  double T = 2.0 * computeResMII(P.Config, P.GSS, 4);
  auto S = buildHeuristicSchedule(P.G, P.SS, P.Config, P.GSS, 4, T, 16);
  ASSERT_TRUE(S.has_value());
  auto Err = verifySchedule(P.G, P.SS, P.Config, P.GSS, *S);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(HeuristicScheduler, FailsBelowResMII) {
  Prepared P = prepare(makeFig4Graph());
  double MII = computeResMII(P.Config, P.GSS, 4);
  EXPECT_FALSE(
      buildHeuristicSchedule(P.G, P.SS, P.Config, P.GSS, 4, 0.5 * MII, 16)
          .has_value());
}

TEST(Scheduler, FindsScheduleAtOrNearMII) {
  Prepared P = prepare(makeFig4Graph());
  SchedulerOptions SO;
  SO.Pmax = 4;
  auto R = scheduleSwp(P.G, P.SS, P.Config, P.GSS, SO);
  ASSERT_TRUE(R.has_value());
  EXPECT_GE(R->FinalII, R->MII);
  // ResMII treats work as divisible, but instances are atomic per SM
  // (constraint 2): with 5 equal-delay instances on 4 SMs the best
  // achievable II is already 60% above sum/P. Accept up to one extra
  // instance's worth of relaxation.
  EXPECT_LE(R->RelaxationPercent, 100.0);
  auto Err = verifySchedule(P.G, P.SS, P.Config, P.GSS, R->Schedule);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(Scheduler, IlpPathProducesValidSchedules) {
  Prepared P = prepare(makeFig4Graph());
  SchedulerOptions SO;
  SO.Pmax = 2;
  SO.IlpEvenIfHeuristicSucceeds = true;
  SO.TimeBudgetSeconds = 5.0;
  auto R = scheduleSwp(P.G, P.SS, P.Config, P.GSS, SO);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->UsedIlp || R->UsedHeuristic);
  auto Err = verifySchedule(P.G, P.SS, P.Config, P.GSS, R->Schedule);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(Scheduler, SplitJoinGraph) {
  Prepared P = prepare(makeDupSplitGraph());
  SchedulerOptions SO;
  SO.Pmax = 4;
  auto R = scheduleSwp(P.G, P.SS, P.Config, P.GSS, SO);
  ASSERT_TRUE(R.has_value());
  auto Err = verifySchedule(P.G, P.SS, P.Config, P.GSS, R->Schedule);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(Scheduler, PeekingGraph) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeOffsetFloat("Pre", 1.0)));
  Parts.push_back(filterStream(makeMovingSum("MS", 8)));
  Prepared P = prepare(flatten(*pipelineStream(std::move(Parts))));
  SchedulerOptions SO;
  SO.Pmax = 2;
  auto R = scheduleSwp(P.G, P.SS, P.Config, P.GSS, SO);
  ASSERT_TRUE(R.has_value());
  auto Err = verifySchedule(P.G, P.SS, P.Config, P.GSS, R->Schedule);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(Verifier, CatchesOverloadedSm) {
  Prepared P = prepare(makeFig4Graph());
  double T = 2.0 * computeResMII(P.Config, P.GSS, 4);
  auto S = buildHeuristicSchedule(P.G, P.SS, P.Config, P.GSS, 4, T, 16);
  ASSERT_TRUE(S.has_value());
  // Cram everything onto SM 0 and shrink the II below the total work.
  for (ScheduledInstance &SI : S->Instances)
    SI.Sm = 0;
  S->II = computeResMII(P.Config, P.GSS, 1) * 0.9;
  for (ScheduledInstance &SI : S->Instances)
    SI.O = 0.0;
  auto Err = verifySchedule(P.G, P.SS, P.Config, P.GSS, *S);
  ASSERT_TRUE(Err.has_value());
}

TEST(Verifier, CatchesCrossSmSameIterationUse) {
  Prepared P = prepare(makeScalePipeline());
  double T = 10.0 * computeResMII(P.Config, P.GSS, 2);
  auto S = buildHeuristicSchedule(P.G, P.SS, P.Config, P.GSS, 2, T, 16);
  ASSERT_TRUE(S.has_value());
  ASSERT_FALSE(verifySchedule(P.G, P.SS, P.Config, P.GSS, *S));
  // Force a producer and consumer onto different SMs in the same stage
  // with adjacent slots: legal time-wise (8a) but illegal per (8b).
  SwpSchedule Bad = *S;
  for (ScheduledInstance &SI : Bad.Instances) {
    SI.F = 0;
    SI.O = SI.Node * (T / 8.0);
    SI.Sm = SI.Node % 2;
  }
  auto Err = verifySchedule(P.G, P.SS, P.Config, P.GSS, Bad);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("8b"), std::string::npos) << *Err;
}

TEST(Verifier, CatchesMissingInstances) {
  Prepared P = prepare(makeFig4Graph());
  double T = 2.0 * computeResMII(P.Config, P.GSS, 4);
  auto S = buildHeuristicSchedule(P.G, P.SS, P.Config, P.GSS, 4, T, 16);
  ASSERT_TRUE(S.has_value());
  S->Instances.pop_back();
  EXPECT_TRUE(verifySchedule(P.G, P.SS, P.Config, P.GSS, *S).has_value());
}
