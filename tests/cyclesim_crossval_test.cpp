//===- tests/cyclesim_crossval_test.cpp - Cycle vs analytic models -----------===//
//
// Cross-validation of the warp-level cycle simulator against the
// analytic model on the eight Table I benchmarks, per the paper's
// claims rather than exact numbers:
//
//   - the strategy ordering (SWP vs SWPNC vs Serial) that the analytic
//     model establishes with a clear margin is preserved by the cycle
//     model — near-ties are skipped, the models may legitimately rank
//     a 5% gap either way;
//   - the configuration Algorithm 7 picks from the analytic profile
//     table remains near-optimal under the cycle-model profile table
//     (one-directional: the cycle model tolerates register spills the
//     analytic model penalizes, so its own pick can differ);
//   - full cycle-model compiles are bit-deterministic run to run and
//     across scheduler/profiler worker counts.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "core/Compiler.h"
#include "profile/ConfigSelection.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

CompileOptions fastOptions(Strategy S, TimingModelKind Timing) {
  CompileOptions O;
  O.Strat = S;
  O.Timing = Timing;
  O.Coarsening = 8;
  // The heuristic scheduler is deterministic and orders the strategies
  // the same way the ILP does; the exact solver's budget would dominate
  // this suite's runtime 48 times over.
  O.Sched.UseIlp = false;
  return O;
}

std::optional<CompileReport> compileBench(const BenchmarkSpec &Spec,
                                          Strategy S,
                                          TimingModelKind Timing) {
  StreamGraph G = flatten(*Spec.Build());
  return compileForGpu(G, fastOptions(S, Timing));
}

} // namespace

TEST(CycleCrossVal, PreservesLayoutOrderingAtMatchedSchedules) {
  // The SWP vs SWPNC distinction as a pure timing-model comparison:
  // take the analytic SWP compile and time the *same* schedule and
  // configuration under both buffer layouts (shuffled Eq. 9-11 vs
  // natural sequential, with its shared-memory staging escape where the
  // working set fits) with both models.
  //
  // The two models only make the same claim when they agree on the
  // transaction counts. They deliberately do not for peeking filters:
  // the closed form prices every shuffled access at 1/16 transactions,
  // but a sliding window's n-th peek lands one word off the 16-word
  // alignment G80 requires, and the cycle simulator — deriving counts
  // from the actual addresses — serializes it, which can legitimately
  // flip DCT toward the staged sequential layout. So the ordering
  // assertion is gated on transaction agreement, and the divergence is
  // pinned down separately: over real addresses the simulator may only
  // ever find MORE transactions than the analytic coalescing
  // assumption, never fewer.
  GpuArch Arch = GpuArch::geForce8800GTS512();
  auto Analytic = createTimingModel(TimingModelKind::Analytic, Arch);
  auto Cycle = createTimingModel(TimingModelKind::Cycle, Arch);
  int Gated = 0;
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    auto Swp = compileBench(Spec, Strategy::Swp, TimingModelKind::Analytic);
    ASSERT_TRUE(Swp) << Spec.Name;

    StreamGraph G = flatten(*Spec.Build());
    KernelDesc Shuf =
        buildSwpKernelDesc(Arch, G, Swp->Config, Swp->Schedule,
                           LayoutKind::Shuffled, Swp->Coarsening);
    KernelDesc Seq =
        buildSwpKernelDesc(Arch, G, Swp->Config, Swp->Schedule,
                           LayoutKind::Sequential, Swp->Coarsening);
    KernelSimResult AnaShuf = Analytic->simulateKernel(Shuf);
    KernelSimResult AnaSeq = Analytic->simulateKernel(Seq);
    KernelSimResult CycShuf = Cycle->simulateKernel(Shuf);
    KernelSimResult CycSeq = Cycle->simulateKernel(Seq);

    // Address-derived counts never beat the optimistic closed form.
    EXPECT_GE(CycShuf.Transactions, AnaShuf.Transactions * 0.999)
        << Spec.Name;
    EXPECT_GE(CycSeq.Transactions, AnaSeq.Transactions * 0.999)
        << Spec.Name;

    bool TxAgree =
        CycShuf.Transactions <= AnaShuf.Transactions * 1.05 &&
        CycSeq.Transactions <= AnaSeq.Transactions * 1.05;
    if (!TxAgree) {
      ++Gated; // Peek misalignment: the models measure different kernels.
      continue;
    }
    if (AnaSeq.TotalCycles > AnaShuf.TotalCycles * 1.15) {
      EXPECT_LT(CycShuf.TotalCycles, CycSeq.TotalCycles * 1.05)
          << Spec.Name << ": analytic prefers shuffled ("
          << AnaShuf.TotalCycles << " vs " << AnaSeq.TotalCycles
          << " cycles) but the cycle model inverts it ("
          << CycShuf.TotalCycles << " vs " << CycSeq.TotalCycles << ")";
    } else if (AnaShuf.TotalCycles > AnaSeq.TotalCycles * 1.15) {
      EXPECT_LT(CycSeq.TotalCycles, CycShuf.TotalCycles * 1.05)
          << Spec.Name << ": analytic prefers sequential ("
          << AnaSeq.TotalCycles << " vs " << AnaShuf.TotalCycles
          << " cycles) but the cycle model inverts it ("
          << CycSeq.TotalCycles << " vs " << CycShuf.TotalCycles << ")";
    }
  }
  // The gate must not quietly swallow the whole suite: most of Table I
  // is peek-free and must carry the strict ordering claim.
  EXPECT_LE(Gated, 3) << "transaction-agreement gate excluded " << Gated
                      << " of 8 benchmarks";
}

TEST(CycleCrossVal, PreservesSwpVsSerialOrdering) {
  // Full compiles under each model: when the analytic trajectory says
  // software pipelining beats the serial Single Appearance Schedule
  // with a clear margin, the cycle trajectory must agree. (SWPNC full
  // compiles are excluded: the cycle model's profile table legitimately
  // steers them to low-thread staged configurations the analytic table
  // rejects, so the two compilers build different programs.)
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    std::array<double, 2> Analytic{}, Cycle{};
    const Strategy Strats[2] = {Strategy::Swp, Strategy::Serial};
    for (int S = 0; S < 2; ++S) {
      auto RA = compileBench(Spec, Strats[S], TimingModelKind::Analytic);
      auto RC = compileBench(Spec, Strats[S], TimingModelKind::Cycle);
      ASSERT_TRUE(RA && RC)
          << Spec.Name << " " << strategyName(Strats[S]);
      Analytic[S] = RA->GpuCyclesPerBaseIteration;
      Cycle[S] = RC->GpuCyclesPerBaseIteration;
      EXPECT_GT(Analytic[S], 0.0) << Spec.Name;
      EXPECT_GT(Cycle[S], 0.0) << Spec.Name;
    }
    if (Analytic[1] > Analytic[0] * 1.15) {
      EXPECT_LT(Cycle[0], Cycle[1] * 1.05)
          << Spec.Name << ": analytic prefers SWP (" << Analytic[0]
          << " vs " << Analytic[1]
          << " cycles/iter) but the cycle model inverts it (" << Cycle[0]
          << " vs " << Cycle[1] << ")";
    } else if (Analytic[0] > Analytic[1] * 1.15) {
      EXPECT_LT(Cycle[1], Cycle[0] * 1.05)
          << Spec.Name << ": analytic prefers Serial (" << Analytic[1]
          << " vs " << Analytic[0]
          << " cycles/iter) but the cycle model inverts it (" << Cycle[1]
          << " vs " << Cycle[0] << ")";
    }
  }
}

TEST(CycleCrossVal, AnalyticConfigStaysNearOptimalUnderCycleProfile) {
  // One-directional config-ranking check: re-rank Algorithm 7's
  // analytic pick inside the cycle-model profile table and require it
  // within 2x of the cycle model's own best work-scaled II. (The cycle
  // model amortizes memory latency over back-to-back firings, so it
  // tolerates spill-heavy configurations the analytic model rejects;
  // its own pick evaluated analytically can be arbitrarily bad, which
  // is why the reverse direction is not asserted.)
  GpuArch Arch = GpuArch::geForce8800GTS512();
  auto CycleModel = createTimingModel(TimingModelKind::Cycle, Arch);
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    StreamGraph G = flatten(*Spec.Build());
    std::optional<SteadyState> SS = SteadyState::compute(G);
    ASSERT_TRUE(SS) << Spec.Name;

    ProfileTable PA = profileGraph(Arch, G, LayoutKind::Shuffled);
    ProfileTable PC = profileGraph(Arch, G, LayoutKind::Shuffled, 0, 0,
                                   CycleModel.get());
    std::optional<ExecutionConfig> CfgA = selectExecutionConfig(*SS, PA);
    std::vector<ConfigCandidate> CandsC;
    std::optional<ExecutionConfig> CfgC =
        selectExecutionConfig(*SS, PC, &CandsC);
    ASSERT_TRUE(CfgA && CfgC) << Spec.Name;

    double BestC = 0.0;
    double AnalyticPickC = -1.0;
    bool First = true;
    for (const ConfigCandidate &C : CandsC) {
      if (!C.Feasible)
        continue;
      if (First || C.WorkScaledII < BestC)
        BestC = C.WorkScaledII;
      First = false;
      if (C.RegLimit == CfgA->RegLimit &&
          C.NumThreads == CfgA->NumThreads)
        AnalyticPickC = C.WorkScaledII;
    }
    ASSERT_FALSE(First) << Spec.Name << ": no feasible cycle candidate";
    ASSERT_GE(AnalyticPickC, 0.0)
        << Spec.Name << ": analytic pick (" << CfgA->RegLimit << " regs, "
        << CfgA->NumThreads << " threads) infeasible under cycle profile";
    EXPECT_LE(AnalyticPickC, 2.0 * BestC)
        << Spec.Name << ": analytic pick ranks " << AnalyticPickC
        << " under the cycle table, best is " << BestC;
  }
}

TEST(CycleCrossVal, CycleCompileIsBitDeterministic) {
  // Same compile, three times, across worker counts: every reported
  // number must be bit-identical (the acceptance bar for
  // `sgpu-compile --timing-model=cycle`).
  for (const char *Name : {"FFT", "DCT"}) {
    const BenchmarkSpec *Spec = findBenchmark(Name);
    ASSERT_NE(Spec, nullptr);
    StreamGraph G = flatten(*Spec->Build());
    CompileOptions O = fastOptions(Strategy::Swp, TimingModelKind::Cycle);

    O.Sched.NumWorkers = 1;
    auto First = compileForGpu(G, O);
    ASSERT_TRUE(First) << Name;
    for (int Workers : {1, 4}) {
      O.Sched.NumWorkers = Workers;
      auto R = compileForGpu(G, O);
      ASSERT_TRUE(R) << Name << " workers=" << Workers;
      EXPECT_EQ(R->Config.RegLimit, First->Config.RegLimit);
      EXPECT_EQ(R->Config.NumThreads, First->Config.NumThreads);
      EXPECT_EQ(R->Schedule.II, First->Schedule.II);
      EXPECT_EQ(R->GpuCyclesPerBaseIteration,
                First->GpuCyclesPerBaseIteration);
      EXPECT_EQ(R->Speedup, First->Speedup);
      EXPECT_EQ(R->KernelSim.TotalCycles, First->KernelSim.TotalCycles);
      EXPECT_EQ(R->KernelSim.Transactions, First->KernelSim.Transactions);
      EXPECT_EQ(R->KernelSim.FillCycles, First->KernelSim.FillCycles);
      EXPECT_EQ(R->PipelineLatencyCycles, First->PipelineLatencyCycles);
    }
  }
}
