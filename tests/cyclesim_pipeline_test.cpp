//===- tests/cyclesim_pipeline_test.cpp - Staged SM pipeline tests -----------===//
//
// Unit coverage for the staged-pipeline engine (Cyclesim v2) and its
// feedback into the analytic model:
//
//   - latch back-pressure: a writeback stalled on the saturated DRAM
//     bus must freeze fetch within the latch depth;
//   - warp-scheduler policies: selectable, deterministic across worker
//     counts, and round-trippable through their option spellings;
//   - timing fidelity: the analytic model (with its peek-serialization
//     term) lands within 2x of the cycle simulator on the two
//     peek-heavy Table I graphs, and agrees exactly with it on FFT's
//     transaction count (the 0.61x regression was a bandwidth double
//     count, not a coalescing error).
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "core/Compiler.h"
#include "gpusim/cyclesim/SmPipeline.h"
#include "gpusim/cyclesim/WarpScheduler.h"

#include <gtest/gtest.h>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

/// Eight one-store warps; \p Txns per store. With heavy stores the bus
/// saturates and each writeback holds the memory latch.
std::vector<WarpProgram> storeWarps(int64_t Txns) {
  std::vector<WarpProgram> Warps(8);
  for (WarpProgram &P : Warps)
    P.Ops.push_back({WarpOp::Kind::Store, 4.0, Txns});
  return Warps;
}

PipelineOptions singleSmOptions(WarpSchedPolicy Policy) {
  PipelineOptions Opts;
  Opts.BusCyclesPerTxn =
      Arch.ChipCyclesPerTxn * static_cast<double>(Arch.NumSMs);
  Opts.Policy = Policy;
  return Opts;
}

CompileOptions fastOptions(Strategy S, TimingModelKind Timing) {
  CompileOptions O;
  O.Strat = S;
  O.Timing = Timing;
  O.Coarsening = 8;
  // The heuristic scheduler orders and places exactly as deterministically
  // as the ILP at a fraction of this suite's runtime.
  O.Sched.UseIlp = false;
  return O;
}

} // namespace

TEST(SmPipeline, LatchBackPressureFreezesFetch) {
  // 100-transaction stores saturate the bus: once the first writebacks
  // occupy the memory latch, the execute port, operand latch and fetch
  // latch fill behind it, so fetch freezes within the latch depth and
  // the wait shows up as fetch-stall cycles. The same instruction mix
  // with zero-transaction stores never touches the bus and must show
  // (almost) none.
  PipelineOptions Opts = singleSmOptions(WarpSchedPolicy::RoundRobin);
  SmBreakdown Heavy = simulateSmPipeline(Arch, storeWarps(100), 1, Opts);
  SmBreakdown Idle = simulateSmPipeline(Arch, storeWarps(0), 1, Opts);

  // Same instruction count either way — only the stalls differ.
  EXPECT_EQ(Heavy.WarpInstrs, Idle.WarpInstrs);
  EXPECT_EQ(Heavy.Transactions, 8 * 100);

  // The memory latch blocks on the bus...
  double BusServiceCycles = 100.0 * Opts.BusCyclesPerTxn;
  EXPECT_GT(Heavy.MemStallCycles, BusServiceCycles);
  EXPECT_DOUBLE_EQ(Idle.MemStallCycles, 0.0);

  // ...and the block propagates all the way into fetch: at least one
  // full bus service of fetch-stall beyond the idle variant's pipeline
  // warmup jitter.
  EXPECT_GT(Heavy.FetchStallCycles - Idle.FetchStallCycles,
            BusServiceCycles);

  // The drain is bus-bound: all eight stores serialized.
  EXPECT_GE(Heavy.TotalCycles, 8.0 * BusServiceCycles);
}

TEST(SmPipeline, GreedyThenOldestSticksWithTheRunningWarp) {
  // Two warps of back-to-back compute: GTO keeps reissuing warp 0 while
  // it stays ready, so warp 1's completion trails warp 0's by the whole
  // program; round-robin interleaves them to near-simultaneous finish.
  // Both policies do the same work — total busy cycles agree.
  std::vector<WarpProgram> Warps(2);
  for (WarpProgram &P : Warps)
    for (int I = 0; I < 16; ++I)
      P.Ops.push_back({WarpOp::Kind::Compute, 4.0, 0});

  SmBreakdown Rr = simulateSmPipeline(
      Arch, Warps, 1, singleSmOptions(WarpSchedPolicy::RoundRobin));
  SmBreakdown Gto = simulateSmPipeline(
      Arch, Warps, 1, singleSmOptions(WarpSchedPolicy::GreedyThenOldest));
  EXPECT_DOUBLE_EQ(Rr.BusyCycles, Gto.BusyCycles);
  EXPECT_EQ(Rr.WarpInstrs, Gto.WarpInstrs);
  // The execute port is the bottleneck either way; the policies may
  // only differ in ordering, not throughput.
  EXPECT_NEAR(Rr.TotalCycles, Gto.TotalCycles, 16.0);
}

TEST(WarpScheduler, ParseRoundTripsAndRejectsUnknown) {
  for (WarpSchedPolicy P :
       {WarpSchedPolicy::RoundRobin, WarpSchedPolicy::GreedyThenOldest})
    EXPECT_EQ(parseWarpSchedPolicy(warpSchedPolicyName(P)), P);
  EXPECT_EQ(parseWarpSchedPolicy("round-robin"),
            WarpSchedPolicy::RoundRobin);
  EXPECT_EQ(parseWarpSchedPolicy("greedy-then-oldest"),
            WarpSchedPolicy::GreedyThenOldest);
  EXPECT_FALSE(parseWarpSchedPolicy("").has_value());
  EXPECT_FALSE(parseWarpSchedPolicy("RR").has_value());
  EXPECT_FALSE(parseWarpSchedPolicy("oldest").has_value());
}

TEST(ConfigSelect, ParseRoundTripsAndRejectsUnknown) {
  for (ConfigSelectMode M :
       {ConfigSelectMode::Auto, ConfigSelectMode::Analytic,
        ConfigSelectMode::Cycle})
    EXPECT_EQ(parseConfigSelectMode(configSelectModeName(M)), M);
  EXPECT_FALSE(parseConfigSelectMode("").has_value());
  EXPECT_FALSE(parseConfigSelectMode("Auto").has_value());
  EXPECT_FALSE(parseConfigSelectMode("simulator").has_value());
}

TEST(WarpScheduler, PolicyCompilesAreBitDeterministicAcrossJobs) {
  // A full cycle-model compile under each policy must be bit-identical
  // across scheduler/profiler worker counts (the CI determinism gate).
  const BenchmarkSpec *Spec = findBenchmark("FFT");
  ASSERT_TRUE(Spec);
  for (WarpSchedPolicy Policy :
       {WarpSchedPolicy::RoundRobin, WarpSchedPolicy::GreedyThenOldest}) {
    std::optional<CompileReport> Base;
    for (int Workers : {1, 4}) {
      CompileOptions O = fastOptions(Strategy::Swp, TimingModelKind::Cycle);
      O.WarpSched = Policy;
      O.Sched.NumWorkers = Workers;
      StreamGraph G = flatten(*Spec->Build());
      std::optional<CompileReport> R = compileForGpu(G, O);
      ASSERT_TRUE(R) << "workers=" << Workers;
      EXPECT_EQ(R->WarpSched, Policy);
      if (!Base) {
        Base = std::move(R);
        continue;
      }
      EXPECT_DOUBLE_EQ(R->KernelSim.TotalCycles,
                       Base->KernelSim.TotalCycles)
          << "workers=" << Workers;
      EXPECT_DOUBLE_EQ(R->KernelSim.FillCycles, Base->KernelSim.FillCycles);
      EXPECT_DOUBLE_EQ(R->KernelSim.Transactions,
                       Base->KernelSim.Transactions);
      EXPECT_DOUBLE_EQ(R->GpuCyclesPerBaseIteration,
                       Base->GpuCyclesPerBaseIteration);
    }
  }
}

TEST(TimingFidelity, PeekHeavyGraphsWithinTwoX) {
  // Filterbank and FMRadio are the peek-heavy graphs whose sliding
  // windows serialized 12.0x / 8.5x away from the analytic model before
  // the peek-serialization term; both must now land within 2x.
  for (const char *Name : {"Filterbank", "FMRadio"}) {
    const BenchmarkSpec *Spec = findBenchmark(Name);
    ASSERT_TRUE(Spec) << Name;
    StreamGraph G = flatten(*Spec->Build());
    std::optional<CompileReport> Ana =
        compileForGpu(G, fastOptions(Strategy::Swp,
                                     TimingModelKind::Analytic));
    ASSERT_TRUE(Ana) << Name;

    auto Cycle = createTimingModel(TimingModelKind::Cycle, Arch);
    KernelDesc Desc = buildSwpKernelDesc(Arch, G, Ana->Config,
                                         Ana->Schedule, Ana->Layout,
                                         Ana->Coarsening);
    KernelSimResult Sim = Cycle->simulateKernel(Desc);
    ASSERT_GT(Ana->KernelSim.TotalCycles, 0.0) << Name;
    double Ratio = Sim.TotalCycles / Ana->KernelSim.TotalCycles;
    EXPECT_GE(Ratio, 0.5) << Name;
    EXPECT_LE(Ratio, 2.0) << Name;
  }
}

TEST(TimingFidelity, FftTransactionCountsAgreeExactly) {
  // The FFT 0.61x underprediction was suspected to be a Coalescer
  // over-credit of coalesced wrap re-reads; it is not — the two models
  // count FFT's transactions identically (pinned here), and the error
  // was the analytic per-SM sums charging bandwidth the chip-wide bound
  // already charges. With that fixed the ratio sits inside the band.
  const BenchmarkSpec *Spec = findBenchmark("FFT");
  ASSERT_TRUE(Spec);
  StreamGraph G = flatten(*Spec->Build());
  std::optional<CompileReport> Ana = compileForGpu(
      G, fastOptions(Strategy::Swp, TimingModelKind::Analytic));
  ASSERT_TRUE(Ana);

  auto Cycle = createTimingModel(TimingModelKind::Cycle, Arch);
  KernelDesc Desc = buildSwpKernelDesc(Arch, G, Ana->Config, Ana->Schedule,
                                       Ana->Layout, Ana->Coarsening);
  KernelSimResult Sim = Cycle->simulateKernel(Desc);
  EXPECT_DOUBLE_EQ(Sim.Transactions, Ana->KernelSim.Transactions);
  double Ratio = Sim.TotalCycles / Ana->KernelSim.TotalCycles;
  EXPECT_GE(Ratio, 0.5);
  EXPECT_LE(Ratio, 2.0);
}

TEST(SmPipeline, StageBreakdownReachesTheReport) {
  // A cycle-model compile must populate the per-stage fields the report
  // JSON exposes (fetch busy/stall, operand stall, memory stall).
  const BenchmarkSpec *Spec = findBenchmark("Bitonic");
  ASSERT_TRUE(Spec);
  StreamGraph G = flatten(*Spec->Build());
  std::optional<CompileReport> R =
      compileForGpu(G, fastOptions(Strategy::Swp, TimingModelKind::Cycle));
  ASSERT_TRUE(R);
  double FetchBusy = 0.0;
  int64_t Instrs = 0;
  for (const SmBreakdown &B : R->KernelSim.PerSm) {
    FetchBusy += B.FetchBusyCycles;
    Instrs += B.WarpInstrs;
  }
  ASSERT_GT(Instrs, 0);
  // Every instruction occupies the fetch latch for at least one latch
  // depth.
  EXPECT_GE(FetchBusy,
            PipelineLatchCycles * static_cast<double>(Instrs));
}
