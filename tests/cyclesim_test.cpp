//===- tests/cyclesim_test.cpp - Warp-level cycle simulator tests ------------===//
//
// Unit tests of gpusim/cyclesim: the coalescer must agree exactly with
// the static layout analysis it shares countHalfWarpTransactions with,
// the event engine must exhibit the paper's mechanisms (latency hiding,
// scoreboard stalls, bandwidth collapse, store drain) rather than assert
// them by formula, and every entry point must be bit-deterministic —
// run to run and across profiling worker counts.
//
//===----------------------------------------------------------------------===//

#include "gpusim/cyclesim/CycleSim.h"

#include "TestGraphs.h"
#include "gpusim/cyclesim/Coalescer.h"
#include "gpusim/cyclesim/WarpProgram.h"
#include "layout/AccessAnalyzer.h"
#include "profile/Profiler.h"

#include <gtest/gtest.h>

using namespace sgpu;
using namespace sgpu::testing;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

MemStream makeStream(int64_t Count, int64_t KeyRate, LayoutKind Layout,
                     bool IsWrite = false) {
  MemStream S;
  S.Count = Count;
  S.KeyRate = KeyRate;
  S.Layout = Layout;
  S.IsWrite = IsWrite;
  return S;
}

SimInstance makeInstance(int64_t Threads, int64_t ComputeOps,
                         int64_t Reads, int64_t Writes,
                         LayoutKind Layout = LayoutKind::Shuffled) {
  SimInstance Inst;
  Inst.Cost.Threads = Threads;
  Inst.Cost.ComputeOps = ComputeOps;
  Inst.Cost.GlobalAccesses = Reads + Writes;
  if (Reads > 0)
    Inst.Streams.push_back(makeStream(Reads, Reads, Layout));
  if (Writes > 0)
    Inst.Streams.push_back(makeStream(Writes, Writes, Layout, true));
  return Inst;
}

} // namespace

//===----------------------------------------------------------------------===//
// Coalescer vs layout/AccessAnalyzer
//===----------------------------------------------------------------------===//

TEST(Coalescer, AgreesWithAccessAnalyzerExactly) {
  // Both walk the same addresses through countHalfWarpTransactions, so
  // for whole strided patterns they must agree transaction for
  // transaction — including partial half-warps and the rates whose
  // shuffled layout is imperfect (non-divisors of the cluster width).
  for (LayoutKind Layout : {LayoutKind::Shuffled, LayoutKind::Sequential})
    for (int64_t Threads : {20, 40, 128, 256, 384, 512})
      for (int64_t Rate : {1, 2, 3, 4, 7, 16}) {
        MemStream S = makeStream(Rate, Rate, Layout);
        AccessSummary A =
            analyzeStridedAccess(Layout, Threads, Rate, Rate);
        EXPECT_EQ(streamTransactions(S, Threads), A.Transactions)
            << "layout=" << static_cast<int>(Layout)
            << " threads=" << Threads << " rate=" << Rate;
      }
}

TEST(Coalescer, SharedStagingAlwaysCoalesces) {
  // The SWPNC escape hatch: staged streams hit device memory through
  // coalesced half-warp transactions no matter how hostile the logical
  // pattern is — one transaction per half-warp per access.
  MemStream S = makeStream(3, 3, LayoutKind::Sequential);
  S.ViaShared = true;
  EXPECT_EQ(streamTransactions(S, 256), (256 / 16) * 3);
  // 40 threads = three half-warps (16 + 16 + 8 lanes).
  EXPECT_EQ(streamTransactions(S, 40), 3 * 3);
  // The unstaged sequential pattern at rate 3 serializes badly.
  MemStream Raw = makeStream(3, 3, LayoutKind::Sequential);
  EXPECT_GT(streamTransactions(Raw, 256), streamTransactions(S, 256));
}

TEST(Coalescer, WindowWrapsReReadsToTheSameAddresses) {
  // A filter that evaluates each popped token twice (Count = 16 reads
  // over a KeyRate = 8 window) re-loads the same buffer positions the
  // generated code re-loads: access n touches token n % Window, so the
  // stream coalesces exactly like the 8-access stream run twice.
  MemStream Wrapped = makeStream(16, 8, LayoutKind::Shuffled);
  Wrapped.Window = 8;
  MemStream Once = makeStream(8, 8, LayoutKind::Shuffled);
  EXPECT_EQ(streamTransactions(Wrapped, 128),
            2 * streamTransactions(Once, 128));
  // Window = 0 defaults to Count: the same 16 accesses then walk past
  // the key rate into the neighbour thread's region, off the 16-word
  // alignment G80 requires, and serialize.
  MemStream NoWindow = makeStream(16, 8, LayoutKind::Shuffled);
  EXPECT_GT(streamTransactions(NoWindow, 128),
            streamTransactions(Wrapped, 128));
}

TEST(Coalescer, PeekWindowKeepsTheMisalignmentPenalty) {
  // A true sliding window (Window > KeyRate, i.e. peek > pop) must NOT
  // wrap: the accesses beyond the key rate genuinely read the neighbour
  // thread's tokens and stay serialized under the shuffled layout.
  MemStream Peeking = makeStream(12, 8, LayoutKind::Shuffled);
  Peeking.Window = 12;
  MemStream Wrapped = makeStream(12, 8, LayoutKind::Shuffled);
  Wrapped.Window = 8;
  EXPECT_GT(streamTransactions(Peeking, 128),
            streamTransactions(Wrapped, 128));
}

TEST(Coalescer, PartialWarpAddressesMatchWholeStream) {
  // streamTransactions is exactly the sum of its per-half-warp calls.
  MemStream S = makeStream(4, 4, LayoutKind::Shuffled);
  int64_t Threads = 200; // 12 half-warps of 16 plus one of 8.
  int64_t Sum = 0;
  for (int64_t Base = 0; Base < Threads; Base += HalfWarpSize) {
    int64_t Lanes = std::min<int64_t>(HalfWarpSize, Threads - Base);
    for (int64_t N = 0; N < S.Count; ++N)
      Sum += warpAccessTransactions(S, Base, Lanes, N);
  }
  EXPECT_EQ(streamTransactions(S, Threads), Sum);
}

TEST(WarpPrograms, TransactionsMatchCoalescerTotals) {
  // The per-warp traces carry exactly the stream's transactions (split
  // warp by warp) plus the coalesced spill traffic.
  SimInstance Inst = makeInstance(160, 50, 4, 2);
  std::vector<WarpProgram> Progs = buildWarpPrograms(Arch, Inst);
  EXPECT_EQ(Progs.size(), 5u); // 160 threads = 5 warps.
  int64_t Txns = 0;
  for (const WarpProgram &P : Progs)
    Txns += P.transactionsPerFiring();
  int64_t Expected = 0;
  for (const MemStream &S : Inst.Streams)
    Expected += streamTransactions(S, Inst.Cost.Threads);
  EXPECT_EQ(Txns, Expected);

  CycleTimingModel Model(Arch);
  EXPECT_DOUBLE_EQ(Model.instanceTransactions(Inst),
                   static_cast<double>(Expected));
}

//===----------------------------------------------------------------------===//
// Event engine mechanisms
//===----------------------------------------------------------------------===//

TEST(CycleSim, ScoreboardExposesLoadLatencyToCompute) {
  CycleTimingModel Model(Arch);
  // One lone warp: its compute depends on the loads, so the round trip
  // (bus + MemLatencyCycles) cannot be hidden.
  SimInstance Loads = makeInstance(32, 10, 4, 0);
  EXPECT_GT(Model.instanceCycles(Loads),
            static_cast<double>(Arch.MemLatencyCycles));
  // Stores are fire-and-forget: nothing waits the latency out, only the
  // bus drain, so a write-only warp finishes well under the round trip.
  SimInstance Stores = makeInstance(32, 10, 0, 2);
  EXPECT_LT(Model.instanceCycles(Stores),
            static_cast<double>(Arch.MemLatencyCycles));
}

TEST(CycleSim, ManyWarpsHideLatency) {
  CycleTimingModel Model(Arch);
  SimInstance Small = makeInstance(32, 100, 8, 4);
  SimInstance Big = makeInstance(512, 100, 8, 4);
  double PerThreadSmall = Model.instanceCycles(Small) / 32.0;
  double PerThreadBig = Model.instanceCycles(Big) / 512.0;
  EXPECT_GT(PerThreadSmall, PerThreadBig)
      << "SMT across 16 warps must hide latency a single warp eats";
}

TEST(CycleSim, MemoryLevelParallelismWidensOverlap) {
  // With a deeper scoreboard the same load-heavy warp overlaps more
  // round trips; capping it at one outstanding load serializes them.
  GpuArch Narrow = Arch;
  Narrow.MemoryLevelParallelism = 1.0;
  SimInstance Inst = makeInstance(32, 20, 8, 0);
  CycleTimingModel Wide(Arch), Serial(Narrow);
  EXPECT_GT(Serial.instanceCycles(Inst), Wide.instanceCycles(Inst));
}

TEST(CycleSim, UncoalescedAccessCollapsesBandwidth) {
  CycleTimingModel Model(Arch);
  // Rate-4 access: shuffled (Eq. 9-11) coalesces perfectly, the natural
  // sequential layout serializes every half-warp into 16 transactions.
  SimInstance Coal = makeInstance(256, 50, 4, 4, LayoutKind::Shuffled);
  SimInstance Ser = makeInstance(256, 50, 4, 4, LayoutKind::Sequential);
  EXPECT_GT(Model.instanceTransactions(Ser),
            8.0 * Model.instanceTransactions(Coal));
  EXPECT_GT(Model.instanceCycles(Ser), 4.0 * Model.instanceCycles(Coal));
}

TEST(CycleSim, StoresDrainTheSharedBus) {
  CycleTimingModel Model(Arch);
  SimInstance Inst = makeInstance(256, 1, 0, 4);
  double Txns = Model.instanceTransactions(Inst);
  ASSERT_GT(Txns, 0.0);
  // Single-SM runs see their bandwidth share (ChipCyclesPerTxn scaled by
  // NumSMs); the instance cannot finish before its stores clear the bus.
  double BusFloor = Txns * Arch.ChipCyclesPerTxn * Arch.NumSMs;
  EXPECT_GE(Model.instanceCycles(Inst), BusFloor);
}

//===----------------------------------------------------------------------===//
// Kernel-level accounting
//===----------------------------------------------------------------------===//

TEST(CycleSim, KernelTransactionsScaleWithIterations) {
  CycleTimingModel Model(Arch);
  SimInstance A = makeInstance(128, 40, 4, 2);
  SimInstance B = makeInstance(256, 80, 2, 2);

  KernelDesc Desc;
  Desc.Instances = {A, B};
  Desc.SmStreams = {{{0, 5}, {1, 2}}, {{1, 3}}};
  KernelSimResult R = Model.simulateKernel(Desc);
  double Expected = 5.0 * Model.instanceTransactions(A) +
                    (2.0 + 3.0) * Model.instanceTransactions(B);
  EXPECT_DOUBLE_EQ(R.Transactions, Expected);

  ASSERT_EQ(R.PerSm.size(), 2u);
  EXPECT_DOUBLE_EQ(static_cast<double>(R.PerSm[0].Transactions),
                   5.0 * Model.instanceTransactions(A) +
                       2.0 * Model.instanceTransactions(B));
  EXPECT_GT(R.PerSm[0].TotalCycles, 0.0);
  EXPECT_GT(R.PerSm[0].BusyCycles, 0.0);
}

TEST(CycleSim, FillCyclesTrackStageSpan) {
  CycleTimingModel Model(Arch);
  KernelDesc Desc;
  Desc.Instances = {makeInstance(128, 40, 4, 2)};
  Desc.SmStreams = {{{0, 2}}};
  Desc.StageSpan = 3;
  KernelSimResult R = Model.simulateKernel(Desc);
  EXPECT_DOUBLE_EQ(R.FillCycles, 3.0 * R.TotalCycles);
  Desc.StageSpan = 0;
  EXPECT_DOUBLE_EQ(Model.simulateKernel(Desc).FillCycles, 0.0);
}

TEST(CycleSim, SharedBusCouplesTheSms) {
  // A memory-bound kernel on 16 SMs at once must take longer per SM
  // than the same stream alone on one SM with the whole chip's bus
  // otherwise idle (the FIFO bus is the only cross-SM coupling).
  CycleTimingModel Model(Arch);
  SimInstance Inst = makeInstance(256, 10, 8, 8);
  KernelDesc Alone;
  Alone.Instances = {Inst};
  Alone.SmStreams = {{{0, 4}}};
  KernelDesc Loaded = Alone;
  for (int S = 1; S < Arch.NumSMs; ++S)
    Loaded.SmStreams.push_back({{0, 4}});
  EXPECT_GT(Model.simulateKernel(Loaded).TotalCycles,
            Model.simulateKernel(Alone).TotalCycles);
}

TEST(CycleSim, ProfileRunCyclesGrowWithIterations) {
  CycleTimingModel Model(Arch);
  SimInstance Inst = makeInstance(128, 40, 4, 2);
  // Strictly increasing through the simulated prefix...
  double Prev = 0.0;
  for (int64_t I = 1; I <= CycleTimingModel::MaxSimulatedProfileIterations;
       ++I) {
    double T = Model.profileRunCycles(Inst, I);
    EXPECT_GT(T, Prev) << "iterations=" << I;
    Prev = T;
  }
  // ...and through the extrapolated tail, which stays linear.
  double T12 = Model.profileRunCycles(Inst, 12);
  double T20 = Model.profileRunCycles(Inst, 20);
  double T28 = Model.profileRunCycles(Inst, 28);
  EXPECT_GT(T12, Prev);
  EXPECT_GT(T20, T12);
  EXPECT_DOUBLE_EQ(T28 - T20, T20 - T12);
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(CycleSim, SimulateKernelIsBitDeterministic) {
  CycleTimingModel Model(Arch);
  KernelDesc Desc;
  Desc.Instances = {makeInstance(128, 40, 4, 2),
                    makeInstance(384, 200, 8, 4),
                    makeInstance(256, 10, 2, 2, LayoutKind::Sequential)};
  Desc.SmStreams = {{{0, 3}, {1, 1}}, {{1, 2}, {2, 2}}, {{2, 5}}};
  Desc.StageSpan = 2;

  KernelSimResult First = Model.simulateKernel(Desc);
  for (int Run = 0; Run < 3; ++Run) {
    KernelSimResult R = Model.simulateKernel(Desc);
    EXPECT_EQ(R.TotalCycles, First.TotalCycles);
    EXPECT_EQ(R.FillCycles, First.FillCycles);
    EXPECT_EQ(R.Transactions, First.Transactions);
    ASSERT_EQ(R.PerSm.size(), First.PerSm.size());
    for (size_t S = 0; S < R.PerSm.size(); ++S) {
      EXPECT_EQ(R.PerSm[S].BusyCycles, First.PerSm[S].BusyCycles);
      EXPECT_EQ(R.PerSm[S].StallCycles, First.PerSm[S].StallCycles);
      EXPECT_EQ(R.PerSm[S].TotalCycles, First.PerSm[S].TotalCycles);
      EXPECT_EQ(R.PerSm[S].WarpInstrs, First.PerSm[S].WarpInstrs);
      EXPECT_EQ(R.PerSm[S].Transactions, First.PerSm[S].Transactions);
    }
  }
}

TEST(CycleSim, ProfileTableIdenticalAcrossJobCounts) {
  // The Fig. 6 sweep fans cells out over worker threads; under the cycle
  // model every cell must come back bit-identical at any worker count.
  auto Model = createTimingModel(TimingModelKind::Cycle, Arch);
  auto Check = [&](const StreamGraph &G) {
    ProfileTable One =
        profileGraph(Arch, G, LayoutKind::Shuffled, 1, 0, Model.get());
    ProfileTable Four =
        profileGraph(Arch, G, LayoutKind::Shuffled, 4, 0, Model.get());
    ASSERT_EQ(One.numNodes(), Four.numNodes());
    for (int N = 0; N < One.numNodes(); ++N)
      for (int R = 0; R < ProfileTable::NumRegLimits; ++R)
        for (int T = 0; T < ProfileTable::NumThreadCounts; ++T)
          EXPECT_EQ(One.at(N, R, T), Four.at(N, R, T))
              << "node=" << N << " reg=" << R << " threads=" << T;
  };
  Check(makeScalePipeline());
  Check(makeFig4Graph());
}

TEST(CycleSim, CycleProfileDiffersFromAnalyticButBothFinite) {
  // Sanity that the seam actually switches models: the two tables agree
  // on feasibility cell by cell and both stay finite where feasible.
  StreamGraph G = makeScalePipeline();
  auto Cycle = createTimingModel(TimingModelKind::Cycle, Arch);
  ProfileTable PC =
      profileGraph(Arch, G, LayoutKind::Shuffled, 1, 0, Cycle.get());
  ProfileTable PA = profileGraph(Arch, G, LayoutKind::Shuffled, 1, 0);
  for (int N = 0; N < PC.numNodes(); ++N)
    for (int R = 0; R < ProfileTable::NumRegLimits; ++R)
      for (int T = 0; T < ProfileTable::NumThreadCounts; ++T) {
        bool FeasC = PC.at(N, R, T) != ProfileTable::Infeasible;
        bool FeasA = PA.at(N, R, T) != ProfileTable::Infeasible;
        EXPECT_EQ(FeasC, FeasA);
        if (FeasC) {
          EXPECT_GT(PC.at(N, R, T), 0.0);
        }
      }
}
