//===- tests/dsl_printer_test.cpp - DSL printer round-trip tests ------------===//
//
// The printer's contract is semantic round-tripping: print(program) must
// reparse, and the reparsed program must flatten to a graph with the same
// structure, rates, and observable behaviour. The fuzzer's minimized
// .str repros are only trustworthy because of this property.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "parser/Parser.h"
#include "sdf/RateSolver.h"
#include "sdf/SteadyState.h"
#include "testing/DslPrinter.h"
#include "testing/GraphGen.h"
#include "testing/TestGraphs.h"

#include <gtest/gtest.h>

using namespace sgpu;
using namespace sgpu::testing;

namespace {

/// Runs init firings + \p Iters steady iterations through the
/// interpreter and returns the output stream.
std::vector<Scalar> runGraph(const StreamGraph &G,
                             const std::vector<Scalar> &Input,
                             int64_t Iters) {
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  auto Topo = G.topologicalOrder();
  EXPECT_TRUE(Topo.has_value());
  GraphInterpreter I(G);
  I.feedInput(Input);
  for (int V : *Topo)
    EXPECT_EQ(I.fireNode(V, SS->initFirings()[V]), SS->initFirings()[V]);
  EXPECT_TRUE(I.runSteadyState(SS->repetitions(), Iters));
  return I.output();
}

/// print -> reparse -> compare structure, rates, and output bit for bit.
void expectRoundTrips(const Stream &S, uint64_t InputSeed) {
  DslPrintResult P = printStreamDsl(S);
  ASSERT_TRUE(P.Ok) << P.Error;
  ParseDiagnostic Diag;
  StreamPtr Re = parseStreamProgram(P.Text, &Diag);
  ASSERT_NE(Re, nullptr) << Diag.str() << "\nprinted:\n" << P.Text;

  StreamGraph G = flatten(S);
  StreamGraph GR = flatten(*Re);
  ASSERT_EQ(G.numNodes(), GR.numNodes()) << P.Text;
  ASSERT_EQ(G.numEdges(), GR.numEdges()) << P.Text;
  auto RepsA = computeRepetitionVector(G);
  auto RepsB = computeRepetitionVector(GR);
  ASSERT_TRUE(RepsA.has_value());
  ASSERT_TRUE(RepsB.has_value());
  EXPECT_EQ(*RepsA, *RepsB) << P.Text;

  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  TokenType Ty = TokenType::Int;
  if (G.entryNode() >= 0 && G.node(G.entryNode()).TheFilter)
    Ty = G.node(G.entryNode()).TheFilter->inputType();
  Rng R(InputSeed);
  std::vector<Scalar> In = randomInput(R, Ty, SS->inputTokensNeeded(2));
  std::vector<Scalar> OutA = runGraph(G, In, 2);
  std::vector<Scalar> OutB = runGraph(GR, In, 2);
  ASSERT_EQ(OutA.size(), OutB.size()) << P.Text;
  for (size_t I = 0; I < OutA.size(); ++I)
    EXPECT_TRUE(OutA[I] == OutB[I])
        << "token " << I << " diverged after the round trip\n" << P.Text;
}

} // namespace

TEST(DslPrinter, Fig4PipelineRoundTrips) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeFig4A()));
  Parts.push_back(filterStream(makeFig4B()));
  expectRoundTrips(*pipelineStream(std::move(Parts)), 7);
}

TEST(DslPrinter, PeekingFilterRoundTrips) {
  expectRoundTrips(*filterStream(makeMovingSum("MA", 4)), 11);
}

TEST(DslPrinter, DuplicateSplitJoinRoundTrips) {
  std::vector<StreamPtr> Branches;
  Branches.push_back(filterStream(makeScaleInt("Twice", 2)));
  Branches.push_back(filterStream(makeScaleInt("Thrice", 3)));
  std::vector<StreamPtr> Parts;
  Parts.push_back(duplicateSplitJoin(std::move(Branches), {1, 1}));
  Parts.push_back(filterStream(makeScaleInt("Out", 1)));
  expectRoundTrips(*pipelineStream(std::move(Parts)), 13);
}

TEST(DslPrinter, FloatFilterRoundTrips) {
  expectRoundTrips(*filterStream(makeOffsetFloat("Off", 0.5)), 17);
}

TEST(DslPrinter, NegativeAndExtremeFloatLiteralsSurvive) {
  FilterBuilder B("Lit", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  B.push(B.add(B.mul(B.pop(), B.litF(-0.1)),
               B.add(B.litF(1e-17), B.litF(3.0))));
  expectRoundTrips(*filterStream(B.build()), 19);
}

TEST(DslPrinter, PrecedenceIsPreserved) {
  // (a + b) * c vs a + b * c and a - (b - c): the printed text must
  // re-derive parentheses from the parser's precedence table.
  FilterBuilder B("Prec", TokenType::Int, TokenType::Int);
  B.setRates(3, 2, 3);
  const Expr *A = B.peek(B.litI(0));
  const Expr *Bb = B.peek(B.litI(1));
  const Expr *Cc = B.peek(B.litI(2));
  B.push(B.mul(B.add(A, Bb), Cc));
  B.push(B.sub(A, B.sub(Bb, Cc)));
  B.popDiscard(3);
  expectRoundTrips(*filterStream(B.build()), 23);
}

TEST(DslPrinter, StatefulFilterRoundTrips) {
  FilterSpec F;
  F.Name = "Acc";
  F.Pop = 2;
  F.Push = 1;
  F.Peek = 2;
  F.Stateful = true;
  expectRoundTrips(*filterStream(buildFilter(F, TokenType::Int)), 29);
}

TEST(DslPrinter, RandomSpecsRoundTrip) {
  GraphGenOptions O;
  O.AllowRoundRobin = true;
  O.AllowFloat = true;
  O.AllowStateful = true;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    GraphSpec Spec = generateGraphSpec(Seed, O);
    StreamPtr S = buildStream(Spec);
    expectRoundTrips(*S, Seed);
  }
}

TEST(DslPrinter, UnprintableConstructsFailWithDiagnostics) {
  // select() exists in the builder API but has no DSL spelling; the
  // printer must refuse it rather than emit text that will not reparse.
  FilterBuilder B("Sel", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const Expr *V = B.pop();
  B.push(B.select(B.gt(V, B.litI(0)), V, B.litI(0)));
  DslPrintResult P = printStreamDsl(*filterStream(B.build()));
  EXPECT_FALSE(P.Ok);
  EXPECT_FALSE(P.Error.empty());
}
