//===- tests/dsl_programs_test.cpp - End-to-end DSL program tests -----------===//
//
// Compiles the shipped .str programs through the full pipeline: parse ->
// flatten -> validate -> schedule -> functional check, and sanity-checks
// the new latency/throughput report fields.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "gpusim/FunctionalSim.h"
#include "parser/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace sgpu;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// The example programs live relative to the repository root; the test
/// binary runs from the build tree, so probe both.
std::string programPath(const std::string &Name) {
  for (const char *Prefix : {"../../examples/programs/",
                             "../examples/programs/",
                             "examples/programs/"}) {
    std::ifstream Probe(Prefix + Name);
    if (Probe.good())
      return Prefix + Name;
  }
  return std::string(SGPU_SOURCE_DIR) + "/examples/programs/" + Name;
}

} // namespace

class DslProgram : public ::testing::TestWithParam<const char *> {};

TEST_P(DslProgram, ParsesAndValidates) {
  std::string Src = readFile(programPath(GetParam()));
  ParseDiagnostic Diag;
  StreamPtr S = parseStreamProgram(Src, &Diag);
  ASSERT_NE(S, nullptr) << Diag.str();
  StreamGraph G = flatten(*S);
  auto Err = G.validate();
  EXPECT_FALSE(Err.has_value()) << *Err;
  EXPECT_FALSE(validateGraphRates(G).has_value());
}

TEST_P(DslProgram, CompilesAndRunsOnTheSimulator) {
  std::string Src = readFile(programPath(GetParam()));
  ParseDiagnostic Diag;
  StreamPtr S = parseStreamProgram(Src, &Diag);
  ASSERT_NE(S, nullptr) << Diag.str();
  StreamGraph G = flatten(*S);

  CompileOptions Options;
  Options.Sched.Pmax = 8;
  Options.Sched.TimeBudgetSeconds = 0.5;
  auto R = compileForGpu(G, Options);
  ASSERT_TRUE(R.has_value());
  EXPECT_GT(R->Speedup, 0.0);
  EXPECT_GT(R->TokensPerKiloCycle, 0.0);
  EXPECT_GE(R->PipelineLatencyCycles,
            R->SchedStats.FinalII - 1e-9);

  auto SS = SteadyState::compute(G);
  SwpFunctionalSim Sim(G, *SS, R->Config, R->GSS, R->Schedule);
  Rng Rand(31);
  std::vector<Scalar> In;
  for (int64_t I = 0, E = Sim.inputTokensNeeded(1); I < E; ++I)
    In.push_back(Scalar::makeFloat(Rand.nextFloat(1.0f)));
  auto FErr = checkScheduleAgainstReference(G, *SS, R->Config, R->GSS,
                                            R->Schedule, In, 1);
  EXPECT_FALSE(FErr.has_value()) << *FErr;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, DslProgram,
    ::testing::Values("equalizer.str", "filterbank.str"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string Name = Info.param;
      return Name.substr(0, Name.find('.'));
    });

TEST(ReportMetrics, LatencyGrowsWithStages) {
  // A deeper pipeline has more stages in flight, hence more latency at a
  // similar II.
  auto Build = [](int Stages) {
    std::ostringstream Src;
    Src << "pipeline P {\n";
    for (int I = 0; I < Stages; ++I)
      Src << "filter F" << I
          << "(float -> float, pop 1, push 1) { push(pop() * 1.5); }\n";
    Src << "}\n";
    ParseDiagnostic Diag;
    StreamPtr S = parseStreamProgram(Src.str(), &Diag);
    EXPECT_NE(S, nullptr) << Diag.str();
    return flatten(*S);
  };
  CompileOptions Options;
  Options.Sched.Pmax = 4;
  StreamGraph G2 = Build(2), G8 = Build(8);
  auto R2 = compileForGpu(G2, Options);
  auto R8 = compileForGpu(G8, Options);
  ASSERT_TRUE(R2 && R8);
  EXPECT_GT(R8->PipelineLatencyCycles, R2->PipelineLatencyCycles);
}
