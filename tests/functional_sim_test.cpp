//===- tests/functional_sim_test.cpp - SWP functional execution tests -------===//

#include "gpusim/FunctionalSim.h"

#include "core/IlpScheduler.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

struct Compiled {
  StreamGraph G;
  SteadyState SS;
  ExecutionConfig Config;
  GpuSteadyState GSS;
  SwpSchedule Schedule;
};

Compiled compile(StreamGraph G, int Pmax = 4) {
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  EXPECT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);
  SchedulerOptions SO;
  SO.Pmax = Pmax;
  auto R = scheduleSwp(G, *SS, *Config, GSS, SO);
  EXPECT_TRUE(R.has_value());
  return {std::move(G), std::move(*SS), std::move(*Config), GSS,
          std::move(R->Schedule)};
}

std::vector<Scalar> intInput(int64_t N, uint64_t Seed = 1) {
  Rng R(Seed);
  std::vector<Scalar> V;
  for (int64_t I = 0; I < N; ++I)
    V.push_back(Scalar::makeInt(R.nextInt(100)));
  return V;
}

std::vector<Scalar> floatInput(int64_t N, uint64_t Seed = 2) {
  Rng R(Seed);
  std::vector<Scalar> V;
  for (int64_t I = 0; I < N; ++I)
    V.push_back(Scalar::makeFloat(R.nextFloat(2.0f)));
  return V;
}

} // namespace

TEST(FunctionalSim, PipelineMatchesReference) {
  Compiled C = compile(makeScalePipeline());
  SwpFunctionalSim Sim(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  std::vector<Scalar> In = intInput(Sim.inputTokensNeeded(3));
  auto Err = checkScheduleAgainstReference(C.G, C.SS, C.Config, C.GSS,
                                           C.Schedule, In, 3);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(FunctionalSim, MultiRateMatchesReference) {
  Compiled C = compile(makeFig4Graph());
  SwpFunctionalSim Sim(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  std::vector<Scalar> In = intInput(Sim.inputTokensNeeded(2));
  auto Err = checkScheduleAgainstReference(C.G, C.SS, C.Config, C.GSS,
                                           C.Schedule, In, 2);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(FunctionalSim, SplitJoinMatchesReference) {
  Compiled C = compile(makeDupSplitGraph());
  SwpFunctionalSim Sim(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  std::vector<Scalar> In = intInput(Sim.inputTokensNeeded(2));
  auto Err = checkScheduleAgainstReference(C.G, C.SS, C.Config, C.GSS,
                                           C.Schedule, In, 2);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(FunctionalSim, PeekingGraphMatchesReference) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeOffsetFloat("Pre", 0.25)));
  Parts.push_back(filterStream(makeMovingSum("MS", 4)));
  Compiled C = compile(flatten(*pipelineStream(std::move(Parts))), 2);
  SwpFunctionalSim Sim(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  std::vector<Scalar> In = floatInput(Sim.inputTokensNeeded(2));
  auto Err = checkScheduleAgainstReference(C.G, C.SS, C.Config, C.GSS,
                                           C.Schedule, In, 2);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(FunctionalSim, DetectsCrossSmRace) {
  Compiled C = compile(makeScalePipeline(), 2);
  // Corrupt the schedule: put everything in stage 0 on alternating SMs;
  // the functional sim must flag the same-invocation cross-SM read.
  SwpSchedule Bad = C.Schedule;
  for (ScheduledInstance &SI : Bad.Instances) {
    SI.F = 0;
    SI.Sm = SI.Node % 2;
    SI.O = SI.Node * (Bad.II / 4.0);
  }
  SwpFunctionalSim Sim(C.G, C.SS, C.Config, C.GSS, Bad);
  std::vector<Scalar> In = intInput(Sim.inputTokensNeeded(2));
  FunctionalRunResult R = Sim.run(In, 2);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("before it is reliably visible"),
            std::string::npos)
      << R.Error;
}

TEST(FunctionalSim, RejectsShortInput) {
  Compiled C = compile(makeScalePipeline());
  SwpFunctionalSim Sim(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  std::vector<Scalar> In = intInput(4); // Far too little.
  FunctionalRunResult R = Sim.run(In, 2);
  EXPECT_FALSE(R.Ok);
}

TEST(FunctionalSim, OutputVolumeMatchesSteadyState) {
  Compiled C = compile(makeFig4Graph());
  SwpFunctionalSim Sim(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  int64_t Iterations = 2;
  std::vector<Scalar> In = intInput(Sim.inputTokensNeeded(Iterations));
  FunctionalRunResult R = Sim.run(In, Iterations);
  ASSERT_TRUE(R.Ok) << R.Error;
  int Exit = C.G.exitNode();
  int64_t Expect =
      (C.SS.initFirings()[Exit] +
       Iterations * C.GSS.Instances[Exit] * C.Config.Threads[Exit]) *
      C.G.node(Exit).TheFilter->pushRate();
  EXPECT_EQ(static_cast<int64_t>(R.Output.size()), Expect);
}
