//===- tests/fuzz_oracle_test.cpp - Oracle suite and minimizer tests --------===//
//
// End-to-end tests of the differential fuzzing subsystem: clean seeds
// pass every oracle, injected scheduler bugs are caught, the
// delta-debugging reducer shrinks failing programs while pinning the
// failing oracle, and the whole path from violation to standalone .str
// repro (print -> reparse -> recompile) holds together.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "parser/Parser.h"
#include "testing/DslPrinter.h"
#include "testing/GraphGen.h"
#include "testing/Oracles.h"
#include "testing/Reducer.h"
#include "testing/TestGraphs.h"

#include <gtest/gtest.h>

using namespace sgpu;
using namespace sgpu::testing;

namespace {

std::string reportStr(const OracleReport &R) {
  std::string S = R.Description;
  for (const OracleFailure &F : R.Failures)
    S += "\n  [" + F.Oracle + "] " + F.Message;
  return S;
}

} // namespace

TEST(FuzzOracles, CleanSeedsPassEveryOracle) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    OracleReport R = runOracles(Seed);
    EXPECT_TRUE(R.ok()) << reportStr(R);
    EXPECT_GT(R.ChecksRun, 0);
  }
}

TEST(FuzzOracles, ExtendedGeneratorSeedsPass) {
  GraphGenOptions Gen;
  Gen.AllowRoundRobin = true;
  Gen.AllowFloat = true;
  Gen.AllowStateful = true;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    OracleReport R = runOracles(Seed, Gen);
    EXPECT_TRUE(R.ok()) << reportStr(R);
  }
}

TEST(FuzzOracles, CycleTimingModelSeedsPass) {
  OracleOptions O;
  O.Timing = TimingModelKind::Cycle;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    OracleReport R = runOracles(Seed, {}, O);
    EXPECT_TRUE(R.ok()) << reportStr(R);
  }
}

TEST(FuzzOracles, ReportsAreDeterministic) {
  // Bit-identical replays are what make per-seed results independent of
  // --jobs: each seed's oracles run single-worker on frozen budgets.
  for (uint64_t Seed : {3ull, 7ull, 11ull}) {
    OracleReport A = runOracles(Seed);
    OracleReport B = runOracles(Seed);
    EXPECT_EQ(A.Description, B.Description);
    EXPECT_EQ(A.ChecksRun, B.ChecksRun);
    ASSERT_EQ(A.Failures.size(), B.Failures.size());
    for (size_t I = 0; I < A.Failures.size(); ++I) {
      EXPECT_EQ(A.Failures[I].Oracle, B.Failures[I].Oracle);
      EXPECT_EQ(A.Failures[I].Message, B.Failures[I].Message);
    }
  }
}

TEST(FuzzOracles, InjectedSchedulerBugsAreCaught) {
  // A deliberately corrupted schedule must surface as a violation — this
  // is the end-to-end proof that the oracles can actually see scheduler
  // bugs, not just that they stay quiet on good compiles.
  for (ScheduleBugKind Kind :
       {ScheduleBugKind::ExceedII, ScheduleBugKind::DoubleAssign,
        ScheduleBugKind::BadSm, ScheduleBugKind::DropInstance}) {
    OracleOptions O;
    O.InjectBug = Kind;
    OracleReport R = runOracles(1, {}, O);
    EXPECT_FALSE(R.ok()) << "bug " << scheduleBugKindName(Kind)
                         << " slipped past every oracle";
  }
}

TEST(FuzzOracles, BugKindNamesRoundTrip) {
  for (ScheduleBugKind Kind :
       {ScheduleBugKind::SwapSlots, ScheduleBugKind::ExceedII,
        ScheduleBugKind::DoubleAssign, ScheduleBugKind::BadSm,
        ScheduleBugKind::DropInstance}) {
    auto Parsed = parseScheduleBugKind(scheduleBugKindName(Kind));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, Kind);
  }
  EXPECT_FALSE(parseScheduleBugKind("no-such-bug").has_value());
}

TEST(FuzzReducer, ShrinksToTheMinimalFailingSpec) {
  // Predicate: "some filter still has pop rate >= 3" stands in for a
  // failure that depends on one feature of one filter; the reducer must
  // strip everything else.
  GraphSpec Spec = generateGraphSpec(5);
  std::function<bool(const StreamSpec &)> AnyBigPop =
      [&](const StreamSpec &S) {
        if (S.K == StreamSpec::Kind::Filter)
          return S.F.Pop >= 3;
        for (const StreamSpec &C : S.Children)
          if (AnyBigPop(C))
            return true;
        return false;
      };
  if (!AnyBigPop(Spec.Root))
    GTEST_SKIP() << "seed drew no filter with pop >= 3";

  ReduceResult R = reduceSpec(
      Spec, [&](const GraphSpec &Cand) { return AnyBigPop(Cand.Root); });
  EXPECT_TRUE(AnyBigPop(R.Spec.Root));
  EXPECT_EQ(countFilters(R.Spec.Root), 1)
      << "1-minimality: a single filter suffices to keep pop >= 3";
  EXPECT_GT(R.StepsApplied, 0);
}

TEST(FuzzReducer, MinimizedReproReplaysThroughTheCompiler) {
  // The full violation -> minimize -> print -> reparse -> recompile
  // path. The injected-bug run stands in for a real scheduler defect;
  // minimization then happens against the structural oracle facts that
  // survive shrinking (the spec keeps compiling), and the emitted .str
  // must go back through parse + compileForGpu cleanly.
  GraphSpec Spec = generateGraphSpec(2);
  OracleOptions O;
  O.RunIlp = false;
  O.RunMetamorphic = false;
  O.RunTimingOrdering = false;
  O.InjectBug = ScheduleBugKind::ExceedII;
  OracleReport First = runOraclesOnSpec(Spec, O);
  ASSERT_FALSE(First.ok());
  // Pin the shrink to the first failing oracle, exactly as sgpu-fuzz does.
  std::string Key = First.firstOracle();
  auto StillFails = [&](const GraphSpec &Cand) {
    return runOraclesOnSpec(Cand, O).firstOracle() == Key;
  };
  ReduceResult Red = reduceSpec(Spec, StillFails);
  EXPECT_LE(countFilters(Red.Spec.Root), countFilters(Spec.Root));

  StreamPtr Min = buildStream(Red.Spec);
  DslPrintResult P = printStreamDsl(*Min);
  ASSERT_TRUE(P.Ok) << P.Error;
  ParseDiagnostic Diag;
  StreamPtr Re = parseStreamProgram(P.Text, &Diag);
  ASSERT_NE(Re, nullptr) << Diag.str();

  StreamGraph GR = flatten(*Re);
  CompileOptions CO;
  CO.Sched.Pmax = 4;
  CO.Sched.TimeBudgetSeconds = 0.25;
  CO.Sched.NumWorkers = 1;
  auto Result = compileForGpu(GR, CO);
  EXPECT_TRUE(Result.has_value())
      << "minimized repro no longer compiles:\n" << P.Text;
}

//===----------------------------------------------------------------------===//
// Hybrid machine slice
//===----------------------------------------------------------------------===//

TEST(FuzzOracles, HybridSeedsPassEveryOracle) {
  // The hybrid trajectory — class-indexed scheduling, host-side
  // channel costs, CPU-aware schema selection — against the same
  // interpreter reference as the GPU mode.
  OracleOptions O;
  O.Machine = MachineMode::Hybrid;
  O.Schema = SchemaMode::Warp;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    OracleReport R = runOracles(Seed, {}, O);
    EXPECT_TRUE(R.ok()) << reportStr(R);
    EXPECT_GT(R.ChecksRun, 0);
  }
}

TEST(FuzzOracles, HybridInjectedBugsAreStillCaught) {
  OracleOptions O;
  O.Machine = MachineMode::Hybrid;
  O.InjectBug = ScheduleBugKind::ExceedII;
  int Caught = 0;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed)
    if (!runOracles(Seed, {}, O).ok())
      ++Caught;
  EXPECT_GT(Caught, 0) << "no hybrid seed caught an injected II overrun";
}

TEST(FuzzOracles, CpuInstanceNeverReceivesQueueEdge) {
  // Pin the codegen invariant directly: squeeze a deep pipeline onto 2
  // SMs of a hybrid machine so work spills to the host, request the
  // warp-specialized schema, and require every shared-memory queue edge
  // to have both endpoints GPU-resident (the host has no shared memory
  // to ring-buffer in).
  CompileOptions Options;
  Options.Machine = MachineMode::Hybrid;
  Options.Schema = SchemaMode::Warp;
  Options.Sched.Pmax = 2;
  StreamGraph G = makeDeepScalePipeline(12);
  auto R = compileForGpu(G, Options);
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->Machine, MachineMode::Hybrid);
  // Non-vacuity: this compile really does spill work to the host AND
  // still finds at least one eligible same-SM queue edge.
  EXPECT_GT(R->CpuResidentInstances, 0);
  EXPECT_GT(R->Schema.numQueueEdges(), 0);
  int NumGpuSms = R->MachineDesc.numGpuSms();
  for (int E = 0; E < G.numEdges(); ++E) {
    if (!R->Schema.isQueue(E))
      continue;
    const ChannelEdge &Edge = G.edge(E);
    for (const ScheduledInstance &SI : R->Schedule.Instances)
      if (SI.Node == Edge.Src || SI.Node == Edge.Dst)
        EXPECT_LT(SI.Sm, NumGpuSms)
            << "queue edge " << E << " touches CPU-resident instance of "
            << G.node(SI.Node).Name;
  }
}
