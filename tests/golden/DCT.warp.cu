// Auto-generated warp-specialized software-pipelined StreamIt kernel
// schema: one persistent block per SM; each scheduled instance
// owns a dedicated warp group, so producers and consumers run
// concurrently. Intra-SM channels are bounded shared-memory ring
// queues with ticket-based push/pop (zero global-memory
// transactions); cross-SM channels keep the global
// cluster-shuffle rings, separated per pipeline iteration by a
// software grid barrier.
#include <cuda_runtime.h>

__device__ __forceinline__ long IDX_E0(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E1(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E2(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E3(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_Q_E4(long q) {
  return q % 2048L; // shared ring, shuffle-free
}

__device__ __forceinline__ long IDX_E5(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E6(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E7(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E8(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E9(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E10(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E11(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E12(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E13(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E14(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E15(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E16(long q) {
  long slot = (q / 65536L) % 10L;
  long r = q % 65536L;
  long t = r / 64L, n = r % 64L;
  r = 128L * n + (t / 128L) * 128L * 64L + (t % 128L);
  return slot * 65536L + r;
}

__device__ __forceinline__ long IDX_E17(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E18(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E19(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E20(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E21(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E22(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E23(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E24(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E25(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E26(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E27(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E28(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E29(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E30(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E31(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E32(long q) {
  long slot = (q / 8192L) % 10L;
  long r = q % 8192L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 8192L + r;
}

__device__ __forceinline__ long IDX_E33(long q) {
  long slot = (q / 65536L) % 10L;
  long r = q % 65536L;
  long t = r / 64L, n = r % 64L;
  r = 128L * n + (t / 128L) * 128L * 64L + (t % 128L);
  return slot * 65536L + r;
}

__device__ __forceinline__ long IDX_E34(long q) {
  long slot = (q / 65536L) % 10L;
  long r = q % 65536L;
  long t = r / 64L, n = r % 64L;
  r = 128L * n + (t / 128L) * 128L * 64L + (t % 128L);
  return slot * 65536L + r;
}

__device__ __forceinline__ long IDX_E35(long q) {
  long slot = (q / 65536L) % 10L;
  long r = q % 65536L;
  long t = r / 64L, n = r % 64L;
  r = 128L * n + (t / 128L) * 128L * 64L + (t % 128L);
  return slot * 65536L + r;
}

// Bounded ring queue tickets: monotonic 64-bit token counts.
// A producer spins until the consumer's head ticket frees ring
// space, writes its tokens, then publishes a new tail; a
// consumer spins on the tail, reads, then releases the head.
// Publication is chained in token order: each publishing lane
// first spins until the ticket reaches its own warp's base
// token index, so warps (and concurrent node instances) of
// unordered warp groups cannot publish a tail that covers
// another warp's not-yet-written ring slots. A ticket value t
// therefore proves every token below t is resident.
// q_wait ends with a block fence (acquire) pairing with the
// publisher's pre-publish __threadfence_block (release), so
// ring accesses cannot be reordered above the observed spin.
__device__ __forceinline__ void q_wait(volatile long long *ticket, long long need) {
  while (*ticket < need) { }
  __threadfence_block();
}
__device__ __forceinline__ void q_publish(long long *ticket, long long from, long long to) {
  while (*(volatile long long *)ticket < from) { }
  atomicMax((unsigned long long *)ticket, (unsigned long long)to);
}

// Software grid barrier: block 0..gridDim-1 arrive, everyone
// spins until the arrival count reaches the per-iteration goal.
// Release/acquire pair: the fence before the arrival add
// publishes this SM's ring writes; the fence after the spin
// keeps the next iteration's cross-SM ring reads from seeing
// stale pre-barrier data in a non-coherent L1.
__device__ unsigned int swp_barrier_arrived = 0u;
__device__ void global_barrier(unsigned int goal) {
  __syncthreads();
  if (threadIdx.x == 0) {
    __threadfence();
    atomicAdd(&swp_barrier_arrived, 1u);
    while (((volatile unsigned int *)&swp_barrier_arrived)[0] < goal) { }
    __threadfence();
  }
  __syncthreads();
}

__device__ const float f2_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f3_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f4_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f5_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f6_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f7_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f8_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f9_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const int f10_perm[64] = {0, 8, 16, 24, 32, 40, 48, 56, 1, 9, 17, 25, 33, 41, 49, 57, 2, 10, 18, 26, 34, 42, 50, 58, 3, 11, 19, 27, 35, 43, 51, 59, 4, 12, 20, 28, 36, 44, 52, 60, 5, 13, 21, 29, 37, 45, 53, 61, 6, 14, 22, 30, 38, 46, 54, 62, 7, 15, 23, 31, 39, 47, 55, 63};
__device__ const float f13_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f14_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f15_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f16_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f17_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f18_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f19_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const float f20_c[64] = {0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.353553f, 0.490393f, 0.415735f, 0.277785f, 0.0975452f, -0.0975452f, -0.277785f, -0.415735f, -0.490393f, 0.46194f, 0.191342f, -0.191342f, -0.46194f, -0.46194f, -0.191342f, 0.191342f, 0.46194f, 0.415735f, -0.0975452f, -0.490393f, -0.277785f, 0.277785f, 0.490393f, 0.0975452f, -0.415735f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.353553f, -0.353553f, -0.353553f, 0.353553f, 0.277785f, -0.490393f, 0.0975452f, 0.415735f, -0.415735f, -0.0975452f, 0.490393f, -0.277785f, 0.191342f, -0.46194f, 0.46194f, -0.191342f, -0.191342f, 0.46194f, -0.46194f, 0.191342f, 0.0975452f, -0.277785f, 0.415735f, -0.490393f, 0.490393f, -0.415735f, 0.277785f, -0.0975452f};
__device__ const int f21_perm[64] = {0, 8, 16, 24, 32, 40, 48, 56, 1, 9, 17, 25, 33, 41, 49, 57, 2, 10, 18, 26, 34, 42, 50, 58, 3, 11, 19, 27, 35, 43, 51, 59, 4, 12, 20, 28, 36, 44, 52, 60, 5, 13, 21, 29, 37, 45, 53, 61, 6, 14, 22, 30, 38, 46, 54, 62, 7, 15, 23, 31, 39, 47, 55, 63};

__device__ void move_0_split#0(const float *__in0, long __iq0, float *__out0, long __oq0, float *__out1, long __oq1, float *__out2, long __oq2, float *__out3, long __oq3, float *__out4, long __oq4, float *__out5, long __oq5, float *__out6, long __oq6, float *__out7, long __oq7) {
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E0(__oq0 + i)] = __in0[IDX_E35(__iq0 + 0 + i)];
  for (int i = 0; i < 8; ++i)
    __out1[IDX_E2(__oq1 + i)] = __in0[IDX_E35(__iq0 + 8 + i)];
  for (int i = 0; i < 8; ++i)
    __out2[IDX_Q_E4(__oq2 + i)] = __in0[IDX_E35(__iq0 + 16 + i)];
  for (int i = 0; i < 8; ++i)
    __out3[IDX_E6(__oq3 + i)] = __in0[IDX_E35(__iq0 + 24 + i)];
  for (int i = 0; i < 8; ++i)
    __out4[IDX_E8(__oq4 + i)] = __in0[IDX_E35(__iq0 + 32 + i)];
  for (int i = 0; i < 8; ++i)
    __out5[IDX_E10(__oq5 + i)] = __in0[IDX_E35(__iq0 + 40 + i)];
  for (int i = 0; i < 8; ++i)
    __out6[IDX_E12(__oq6 + i)] = __in0[IDX_E35(__iq0 + 48 + i)];
  for (int i = 0; i < 8; ++i)
    __out7[IDX_E14(__oq7 + i)] = __in0[IDX_E35(__iq0 + 56 + i)];
}

__device__ void move_1_join#1(const float *__in0, long __iq0, const float *__in1, long __iq1, const float *__in2, long __iq2, const float *__in3, long __iq3, const float *__in4, long __iq4, const float *__in5, long __iq5, const float *__in6, long __iq6, const float *__in7, long __iq7, float *__out0, long __oq0) {
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E16(__oq0 + 0 + i)] = __in0[IDX_E1(__iq0 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E16(__oq0 + 8 + i)] = __in1[IDX_E3(__iq1 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E16(__oq0 + 16 + i)] = __in2[IDX_E5(__iq2 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E16(__oq0 + 24 + i)] = __in3[IDX_E7(__iq3 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E16(__oq0 + 32 + i)] = __in4[IDX_E9(__iq4 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E16(__oq0 + 40 + i)] = __in5[IDX_E11(__iq5 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E16(__oq0 + 48 + i)] = __in6[IDX_E13(__iq6 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E16(__oq0 + 56 + i)] = __in7[IDX_E15(__iq7 + i)];
}

__device__ void work_2_DCT1D_rows_0(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f2_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E0(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E1(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_3_DCT1D_rows_1(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f3_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E2(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E3(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_4_DCT1D_rows_2(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f4_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_Q_E4(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E5(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_Q_E4(__in_q0 + (__pop_idx++))];
  __in[IDX_Q_E4(__in_q0 + (__pop_idx++))];
  __in[IDX_Q_E4(__in_q0 + (__pop_idx++))];
  __in[IDX_Q_E4(__in_q0 + (__pop_idx++))];
  __in[IDX_Q_E4(__in_q0 + (__pop_idx++))];
  __in[IDX_Q_E4(__in_q0 + (__pop_idx++))];
  __in[IDX_Q_E4(__in_q0 + (__pop_idx++))];
  __in[IDX_Q_E4(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_5_DCT1D_rows_3(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f5_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E6(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E7(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E6(__in_q0 + (__pop_idx++))];
  __in[IDX_E6(__in_q0 + (__pop_idx++))];
  __in[IDX_E6(__in_q0 + (__pop_idx++))];
  __in[IDX_E6(__in_q0 + (__pop_idx++))];
  __in[IDX_E6(__in_q0 + (__pop_idx++))];
  __in[IDX_E6(__in_q0 + (__pop_idx++))];
  __in[IDX_E6(__in_q0 + (__pop_idx++))];
  __in[IDX_E6(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_6_DCT1D_rows_4(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f6_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E8(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E9(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E8(__in_q0 + (__pop_idx++))];
  __in[IDX_E8(__in_q0 + (__pop_idx++))];
  __in[IDX_E8(__in_q0 + (__pop_idx++))];
  __in[IDX_E8(__in_q0 + (__pop_idx++))];
  __in[IDX_E8(__in_q0 + (__pop_idx++))];
  __in[IDX_E8(__in_q0 + (__pop_idx++))];
  __in[IDX_E8(__in_q0 + (__pop_idx++))];
  __in[IDX_E8(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_7_DCT1D_rows_5(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f7_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E10(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E11(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E10(__in_q0 + (__pop_idx++))];
  __in[IDX_E10(__in_q0 + (__pop_idx++))];
  __in[IDX_E10(__in_q0 + (__pop_idx++))];
  __in[IDX_E10(__in_q0 + (__pop_idx++))];
  __in[IDX_E10(__in_q0 + (__pop_idx++))];
  __in[IDX_E10(__in_q0 + (__pop_idx++))];
  __in[IDX_E10(__in_q0 + (__pop_idx++))];
  __in[IDX_E10(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_8_DCT1D_rows_6(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f8_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E12(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E13(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E12(__in_q0 + (__pop_idx++))];
  __in[IDX_E12(__in_q0 + (__pop_idx++))];
  __in[IDX_E12(__in_q0 + (__pop_idx++))];
  __in[IDX_E12(__in_q0 + (__pop_idx++))];
  __in[IDX_E12(__in_q0 + (__pop_idx++))];
  __in[IDX_E12(__in_q0 + (__pop_idx++))];
  __in[IDX_E12(__in_q0 + (__pop_idx++))];
  __in[IDX_E12(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_9_DCT1D_rows_7(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f9_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E14(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E15(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E14(__in_q0 + (__pop_idx++))];
  __in[IDX_E14(__in_q0 + (__pop_idx++))];
  __in[IDX_E14(__in_q0 + (__pop_idx++))];
  __in[IDX_E14(__in_q0 + (__pop_idx++))];
  __in[IDX_E14(__in_q0 + (__pop_idx++))];
  __in[IDX_E14(__in_q0 + (__pop_idx++))];
  __in[IDX_E14(__in_q0 + (__pop_idx++))];
  __in[IDX_E14(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_10_Transpose_a(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define perm f10_perm
  for (int i = 0; i < 64; i += 1) {
    __out[IDX_E33(__out_q0 + (__push_idx++))] = __in[IDX_E16(__in_q0 + __pop_idx + (perm[i]))];
  }
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  __in[IDX_E16(__in_q0 + (__pop_idx++))];
  #undef perm
}

__device__ void move_11_split#11(const float *__in0, long __iq0, float *__out0, long __oq0, float *__out1, long __oq1, float *__out2, long __oq2, float *__out3, long __oq3, float *__out4, long __oq4, float *__out5, long __oq5, float *__out6, long __oq6, float *__out7, long __oq7) {
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E17(__oq0 + i)] = __in0[IDX_E33(__iq0 + 0 + i)];
  for (int i = 0; i < 8; ++i)
    __out1[IDX_E19(__oq1 + i)] = __in0[IDX_E33(__iq0 + 8 + i)];
  for (int i = 0; i < 8; ++i)
    __out2[IDX_E21(__oq2 + i)] = __in0[IDX_E33(__iq0 + 16 + i)];
  for (int i = 0; i < 8; ++i)
    __out3[IDX_E23(__oq3 + i)] = __in0[IDX_E33(__iq0 + 24 + i)];
  for (int i = 0; i < 8; ++i)
    __out4[IDX_E25(__oq4 + i)] = __in0[IDX_E33(__iq0 + 32 + i)];
  for (int i = 0; i < 8; ++i)
    __out5[IDX_E27(__oq5 + i)] = __in0[IDX_E33(__iq0 + 40 + i)];
  for (int i = 0; i < 8; ++i)
    __out6[IDX_E29(__oq6 + i)] = __in0[IDX_E33(__iq0 + 48 + i)];
  for (int i = 0; i < 8; ++i)
    __out7[IDX_E31(__oq7 + i)] = __in0[IDX_E33(__iq0 + 56 + i)];
}

__device__ void move_12_join#12(const float *__in0, long __iq0, const float *__in1, long __iq1, const float *__in2, long __iq2, const float *__in3, long __iq3, const float *__in4, long __iq4, const float *__in5, long __iq5, const float *__in6, long __iq6, const float *__in7, long __iq7, float *__out0, long __oq0) {
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E34(__oq0 + 0 + i)] = __in0[IDX_E18(__iq0 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E34(__oq0 + 8 + i)] = __in1[IDX_E20(__iq1 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E34(__oq0 + 16 + i)] = __in2[IDX_E22(__iq2 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E34(__oq0 + 24 + i)] = __in3[IDX_E24(__iq3 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E34(__oq0 + 32 + i)] = __in4[IDX_E26(__iq4 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E34(__oq0 + 40 + i)] = __in5[IDX_E28(__iq5 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E34(__oq0 + 48 + i)] = __in6[IDX_E30(__iq6 + i)];
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E34(__oq0 + 56 + i)] = __in7[IDX_E32(__iq7 + i)];
}

__device__ void work_13_DCT1D_cols_0(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f13_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E17(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E18(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E17(__in_q0 + (__pop_idx++))];
  __in[IDX_E17(__in_q0 + (__pop_idx++))];
  __in[IDX_E17(__in_q0 + (__pop_idx++))];
  __in[IDX_E17(__in_q0 + (__pop_idx++))];
  __in[IDX_E17(__in_q0 + (__pop_idx++))];
  __in[IDX_E17(__in_q0 + (__pop_idx++))];
  __in[IDX_E17(__in_q0 + (__pop_idx++))];
  __in[IDX_E17(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_14_DCT1D_cols_1(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f14_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E19(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E20(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E19(__in_q0 + (__pop_idx++))];
  __in[IDX_E19(__in_q0 + (__pop_idx++))];
  __in[IDX_E19(__in_q0 + (__pop_idx++))];
  __in[IDX_E19(__in_q0 + (__pop_idx++))];
  __in[IDX_E19(__in_q0 + (__pop_idx++))];
  __in[IDX_E19(__in_q0 + (__pop_idx++))];
  __in[IDX_E19(__in_q0 + (__pop_idx++))];
  __in[IDX_E19(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_15_DCT1D_cols_2(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f15_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E21(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E22(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E21(__in_q0 + (__pop_idx++))];
  __in[IDX_E21(__in_q0 + (__pop_idx++))];
  __in[IDX_E21(__in_q0 + (__pop_idx++))];
  __in[IDX_E21(__in_q0 + (__pop_idx++))];
  __in[IDX_E21(__in_q0 + (__pop_idx++))];
  __in[IDX_E21(__in_q0 + (__pop_idx++))];
  __in[IDX_E21(__in_q0 + (__pop_idx++))];
  __in[IDX_E21(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_16_DCT1D_cols_3(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f16_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E23(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E24(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E23(__in_q0 + (__pop_idx++))];
  __in[IDX_E23(__in_q0 + (__pop_idx++))];
  __in[IDX_E23(__in_q0 + (__pop_idx++))];
  __in[IDX_E23(__in_q0 + (__pop_idx++))];
  __in[IDX_E23(__in_q0 + (__pop_idx++))];
  __in[IDX_E23(__in_q0 + (__pop_idx++))];
  __in[IDX_E23(__in_q0 + (__pop_idx++))];
  __in[IDX_E23(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_17_DCT1D_cols_4(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f17_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E25(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E26(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E25(__in_q0 + (__pop_idx++))];
  __in[IDX_E25(__in_q0 + (__pop_idx++))];
  __in[IDX_E25(__in_q0 + (__pop_idx++))];
  __in[IDX_E25(__in_q0 + (__pop_idx++))];
  __in[IDX_E25(__in_q0 + (__pop_idx++))];
  __in[IDX_E25(__in_q0 + (__pop_idx++))];
  __in[IDX_E25(__in_q0 + (__pop_idx++))];
  __in[IDX_E25(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_18_DCT1D_cols_5(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f18_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E27(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E28(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E27(__in_q0 + (__pop_idx++))];
  __in[IDX_E27(__in_q0 + (__pop_idx++))];
  __in[IDX_E27(__in_q0 + (__pop_idx++))];
  __in[IDX_E27(__in_q0 + (__pop_idx++))];
  __in[IDX_E27(__in_q0 + (__pop_idx++))];
  __in[IDX_E27(__in_q0 + (__pop_idx++))];
  __in[IDX_E27(__in_q0 + (__pop_idx++))];
  __in[IDX_E27(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_19_DCT1D_cols_6(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f19_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E29(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E30(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E29(__in_q0 + (__pop_idx++))];
  __in[IDX_E29(__in_q0 + (__pop_idx++))];
  __in[IDX_E29(__in_q0 + (__pop_idx++))];
  __in[IDX_E29(__in_q0 + (__pop_idx++))];
  __in[IDX_E29(__in_q0 + (__pop_idx++))];
  __in[IDX_E29(__in_q0 + (__pop_idx++))];
  __in[IDX_E29(__in_q0 + (__pop_idx++))];
  __in[IDX_E29(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_20_DCT1D_cols_7(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define c f20_c
  float sum;
  for (int k = 0; k < 8; k += 1) {
    sum = 0.0f;
    for (int j = 0; j < 8; j += 1) {
      sum = sum + c[k * 8 + j] * __in[IDX_E31(__in_q0 + __pop_idx + (j))];
    }
    __out[IDX_E32(__out_q0 + (__push_idx++))] = sum;
  }
  __in[IDX_E31(__in_q0 + (__pop_idx++))];
  __in[IDX_E31(__in_q0 + (__pop_idx++))];
  __in[IDX_E31(__in_q0 + (__pop_idx++))];
  __in[IDX_E31(__in_q0 + (__pop_idx++))];
  __in[IDX_E31(__in_q0 + (__pop_idx++))];
  __in[IDX_E31(__in_q0 + (__pop_idx++))];
  __in[IDX_E31(__in_q0 + (__pop_idx++))];
  __in[IDX_E31(__in_q0 + (__pop_idx++))];
  #undef c
}

__device__ void work_21_Transpose_b(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define perm f21_perm
  for (int i = 0; i < 64; i += 1) {
    __out[IDX_OUT(__out_q0 + (__push_idx++))] = __in[IDX_E34(__in_q0 + __pop_idx + (perm[i]))];
  }
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  __in[IDX_E34(__in_q0 + (__pop_idx++))];
  #undef perm
}

__device__ void work_22___input(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  __out[IDX_E35(__out_q0 + (__push_idx++))] = __in[IDX_IN(__in_q0 + (__pop_idx++))];
}

// Staging predicate: instance with stage f runs the work of
// logical iteration (it - f); negative means prologue idle.
__global__ void streamit_swp_kernel(float *buf_e0, float *buf_e1, float *buf_e2, float *buf_e3, float *buf_e5, float *buf_e6, float *buf_e7, float *buf_e8, float *buf_e9, float *buf_e10, float *buf_e11, float *buf_e12, float *buf_e13, float *buf_e14, float *buf_e15, float *buf_e16, float *buf_e17, float *buf_e18, float *buf_e19, float *buf_e20, float *buf_e21, float *buf_e22, float *buf_e23, float *buf_e24, float *buf_e25, float *buf_e26, float *buf_e27, float *buf_e28, float *buf_e29, float *buf_e30, float *buf_e31, float *buf_e32, float *buf_e33, float *buf_e34, float *buf_e35, const float *buf_in, float *buf_out, int iterations) {
  __shared__ float q_e4[2048];
  __shared__ long long qt_e4_head, qt_e4_tail;
  if (threadIdx.x == 0) {
    qt_e4_head = 0LL; qt_e4_tail = 0LL;
  }
  __syncthreads();
  for (int it = 0; it < iterations; ++it) {
  switch (blockIdx.x) {
  case 0: {
    // o=0 f=2 DCT1D_rows_0#2 instance 0  warps [0, 4)
    { int j = it - 2;
      int tid = (int)threadIdx.x - 0;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_2_DCT1D_rows_0(buf_e0, b * 8L, buf_e1, b * 8L);
        }
      }
    }
    // o=0 f=2 DCT1D_rows_4#6 instance 0  warps [4, 8)
    { int j = it - 2;
      int tid = (int)threadIdx.x - 128;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_6_DCT1D_rows_4(buf_e8, b * 8L, buf_e9, b * 8L);
        }
      }
    }
    // o=0 f=4 Transpose_a#10 instance 0  warps [8, 12)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 256;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_10_Transpose_a(buf_e16, b * 64L, buf_e33, b * 64L);
        }
      }
    }
    // o=0 f=6 DCT1D_cols_0#13 instance 0  warps [12, 16)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 384;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_13_DCT1D_cols_0(buf_e17, b * 8L, buf_e18, b * 8L);
        }
      }
    }
    // o=0 f=6 DCT1D_cols_4#17 instance 0  warps [16, 20)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 512;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_17_DCT1D_cols_4(buf_e25, b * 8L, buf_e26, b * 8L);
        }
      }
    }
    // o=0 f=0 __input instance 0  warps [20, 24)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 640;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 0L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 2  warps [24, 28)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 768;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 2L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 4  warps [28, 32)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 896;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 4L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 6  warps [32, 36)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1024;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 6L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 8  warps [36, 40)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1152;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 8L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 10  warps [40, 44)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1280;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 10L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 12  warps [44, 48)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1408;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 12L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 14  warps [48, 52)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1536;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 14L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 16  warps [52, 56)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1664;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 16L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 18  warps [56, 60)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1792;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 18L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 20  warps [60, 64)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1920;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 20L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 22  warps [64, 68)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2048;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 22L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 24  warps [68, 72)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2176;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 24L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 26  warps [72, 76)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2304;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 26L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 28  warps [76, 80)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2432;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 28L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 30  warps [80, 84)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2560;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 30L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 32  warps [84, 88)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2688;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 32L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 34  warps [88, 92)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2816;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 34L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 36  warps [92, 96)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2944;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 36L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 38  warps [96, 100)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3072;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 38L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 40  warps [100, 104)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3200;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 40L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 42  warps [104, 108)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3328;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 42L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 44  warps [108, 112)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3456;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 44L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 48  warps [112, 116)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3584;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 48L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 52  warps [116, 120)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3712;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 52L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 56  warps [120, 124)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3840;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 56L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 60  warps [124, 128)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3968;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 60L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    break;
  }
  case 1: {
    // o=0 f=2 DCT1D_rows_1#3 instance 0  warps [0, 4)
    { int j = it - 2;
      int tid = (int)threadIdx.x - 0;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_3_DCT1D_rows_1(buf_e2, b * 8L, buf_e3, b * 8L);
        }
      }
    }
    // o=0 f=2 DCT1D_rows_5#7 instance 0  warps [4, 8)
    { int j = it - 2;
      int tid = (int)threadIdx.x - 128;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_7_DCT1D_rows_5(buf_e10, b * 8L, buf_e11, b * 8L);
        }
      }
    }
    // o=0 f=6 DCT1D_cols_1#14 instance 0  warps [8, 12)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 256;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_14_DCT1D_cols_1(buf_e19, b * 8L, buf_e20, b * 8L);
        }
      }
    }
    // o=0 f=6 DCT1D_cols_5#18 instance 0  warps [12, 16)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 384;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_18_DCT1D_cols_5(buf_e27, b * 8L, buf_e28, b * 8L);
        }
      }
    }
    // o=0 f=8 Transpose_b#21 instance 0  warps [16, 20)
    { int j = it - 8;
      int tid = (int)threadIdx.x - 512;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_21_Transpose_b(buf_e34, b * 64L, buf_out, b * 64L);
        }
      }
    }
    // o=0 f=0 __input instance 1  warps [20, 24)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 640;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 1L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 3  warps [24, 28)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 768;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 3L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 5  warps [28, 32)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 896;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 5L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 7  warps [32, 36)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1024;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 7L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 9  warps [36, 40)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1152;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 9L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 11  warps [40, 44)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1280;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 11L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 13  warps [44, 48)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1408;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 13L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 15  warps [48, 52)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1536;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 15L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 17  warps [52, 56)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1664;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 17L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 19  warps [56, 60)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1792;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 19L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 21  warps [60, 64)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1920;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 21L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 23  warps [64, 68)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2048;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 23L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 25  warps [68, 72)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2176;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 25L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 27  warps [72, 76)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2304;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 27L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 29  warps [76, 80)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2432;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 29L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 31  warps [80, 84)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2560;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 31L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 33  warps [84, 88)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2688;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 33L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 35  warps [88, 92)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2816;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 35L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 37  warps [92, 96)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2944;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 37L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 39  warps [96, 100)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3072;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 39L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 41  warps [100, 104)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3200;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 41L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 43  warps [104, 108)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3328;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 43L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 45  warps [108, 112)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3456;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 45L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 49  warps [112, 116)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3584;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 49L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 53  warps [116, 120)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3712;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 53L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 57  warps [120, 124)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3840;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 57L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 61  warps [124, 128)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 3968;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 61L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    break;
  }
  case 2: {
    // o=0 f=1 split#0 instance 0  warps [0, 4)
    { int j = it - 1;
      int tid = (int)threadIdx.x - 0;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          q_wait(&qt_e4_head, (b + 1L) * 8L - 2048L);
          move_0_split#0(buf_e35, b * 64L, buf_e0, 0L + b * 8L, buf_e2, 0L + b * 8L, q_e4, 0L + b * 8L, buf_e6, 0L + b * 8L, buf_e8, 0L + b * 8L, buf_e10, 0L + b * 8L, buf_e12, 0L + b * 8L, buf_e14, 0L + b * 8L);
          __threadfence_block(); __syncwarp();
          if ((threadIdx.x & 31) == 31 || tid == 127) q_publish(&qt_e4_tail, (b - (tid & 31)) * 8L, (b + 1L) * 8L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=5 split#11 instance 0  warps [4, 8)
    { int j = it - 5;
      int tid = (int)threadIdx.x - 128;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          move_11_split#11(buf_e33, b * 64L, buf_e17, 0L + b * 8L, buf_e19, 0L + b * 8L, buf_e21, 0L + b * 8L, buf_e23, 0L + b * 8L, buf_e25, 0L + b * 8L, buf_e27, 0L + b * 8L, buf_e29, 0L + b * 8L, buf_e31, 0L + b * 8L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=0 __input instance 46  warps [8, 12)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 256;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 46L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 50  warps [12, 16)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 384;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 50L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 54  warps [16, 20)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 512;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 54L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 58  warps [20, 24)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 640;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 58L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 62  warps [24, 28)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 768;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 62L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=28040.3 f=1 DCT1D_rows_2#4 instance 0  warps [28, 32)
    { int j = it - 1;
      int tid = (int)threadIdx.x - 896;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          q_wait(&qt_e4_tail, (b + 1L) * 8L);
          work_4_DCT1D_rows_2(q_e4, b * 8L, buf_e5, b * 8L);
          __threadfence_block(); __syncwarp();
          if ((threadIdx.x & 31) == 31 || tid == 127) q_publish(&qt_e4_head, (b - (tid & 31)) * 8L, (b + 1L) * 8L);
        }
      }
    }
    // o=28040.3 f=1 DCT1D_rows_6#8 instance 0  warps [32, 36)
    { int j = it - 1;
      int tid = (int)threadIdx.x - 1024;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_8_DCT1D_rows_6(buf_e12, b * 8L, buf_e13, b * 8L);
        }
      }
    }
    // o=28040.3 f=5 DCT1D_cols_2#15 instance 0  warps [36, 40)
    { int j = it - 5;
      int tid = (int)threadIdx.x - 1152;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_15_DCT1D_cols_2(buf_e21, b * 8L, buf_e22, b * 8L);
        }
      }
    }
    // o=28040.3 f=5 DCT1D_cols_6#19 instance 0  warps [40, 44)
    { int j = it - 5;
      int tid = (int)threadIdx.x - 1280;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_19_DCT1D_cols_6(buf_e29, b * 8L, buf_e30, b * 8L);
        }
      }
    }
    break;
  }
  case 3: {
    // o=0 f=3 join#1 instance 0  warps [0, 4)
    { int j = it - 3;
      int tid = (int)threadIdx.x - 0;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          move_1_join#1(buf_e1, b * 8L, buf_e3, b * 8L, buf_e5, b * 8L, buf_e7, b * 8L, buf_e9, b * 8L, buf_e11, b * 8L, buf_e13, b * 8L, buf_e15, b * 8L, buf_e16, 0L + b * 64L);
        }
      }
    }
    // o=0 f=2 DCT1D_rows_3#5 instance 0  warps [4, 8)
    { int j = it - 2;
      int tid = (int)threadIdx.x - 128;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_5_DCT1D_rows_3(buf_e6, b * 8L, buf_e7, b * 8L);
        }
      }
    }
    // o=0 f=2 DCT1D_rows_7#9 instance 0  warps [8, 12)
    { int j = it - 2;
      int tid = (int)threadIdx.x - 256;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_9_DCT1D_rows_7(buf_e14, b * 8L, buf_e15, b * 8L);
        }
      }
    }
    // o=0 f=7 join#12 instance 0  warps [12, 16)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 384;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          move_12_join#12(buf_e18, b * 8L, buf_e20, b * 8L, buf_e22, b * 8L, buf_e24, b * 8L, buf_e26, b * 8L, buf_e28, b * 8L, buf_e30, b * 8L, buf_e32, b * 8L, buf_e34, 0L + b * 64L);
        }
      }
    }
    // o=0 f=6 DCT1D_cols_3#16 instance 0  warps [16, 20)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 512;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_16_DCT1D_cols_3(buf_e23, b * 8L, buf_e24, b * 8L);
        }
      }
    }
    // o=0 f=6 DCT1D_cols_7#20 instance 0  warps [20, 24)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 640;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_20_DCT1D_cols_7(buf_e31, b * 8L, buf_e32, b * 8L);
        }
      }
    }
    // o=0 f=0 __input instance 47  warps [24, 28)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 768;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 47L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 51  warps [28, 32)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 896;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 51L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 55  warps [32, 36)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1024;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 55L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 59  warps [36, 40)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1152;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 59L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 63  warps [40, 44)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1280;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 64L + 63L) * 128L + tid;
          work_22___input(buf_in, b * 1L, buf_e35, b * 1L);
        }
      }
    }
    break;
  }
  default: break;
  }
  global_barrier(4u * (unsigned int)(it + 1));
  }
}

// Host driver: allocates the global ring buffers (queue edges
// live in shared memory), shuffles the program input per Eq. 9
// and launches the persistent kernel once.
void run_streamit_program(int iterations) {
  float *buf_e0; cudaMalloc(&buf_e0, 327680L);
  float *buf_e1; cudaMalloc(&buf_e1, 327680L);
  float *buf_e2; cudaMalloc(&buf_e2, 327680L);
  float *buf_e3; cudaMalloc(&buf_e3, 327680L);
  float *buf_e5; cudaMalloc(&buf_e5, 327680L);
  float *buf_e6; cudaMalloc(&buf_e6, 327680L);
  float *buf_e7; cudaMalloc(&buf_e7, 327680L);
  float *buf_e8; cudaMalloc(&buf_e8, 327680L);
  float *buf_e9; cudaMalloc(&buf_e9, 327680L);
  float *buf_e10; cudaMalloc(&buf_e10, 327680L);
  float *buf_e11; cudaMalloc(&buf_e11, 327680L);
  float *buf_e12; cudaMalloc(&buf_e12, 327680L);
  float *buf_e13; cudaMalloc(&buf_e13, 327680L);
  float *buf_e14; cudaMalloc(&buf_e14, 327680L);
  float *buf_e15; cudaMalloc(&buf_e15, 327680L);
  float *buf_e16; cudaMalloc(&buf_e16, 2621440L);
  float *buf_e17; cudaMalloc(&buf_e17, 327680L);
  float *buf_e18; cudaMalloc(&buf_e18, 327680L);
  float *buf_e19; cudaMalloc(&buf_e19, 327680L);
  float *buf_e20; cudaMalloc(&buf_e20, 327680L);
  float *buf_e21; cudaMalloc(&buf_e21, 327680L);
  float *buf_e22; cudaMalloc(&buf_e22, 327680L);
  float *buf_e23; cudaMalloc(&buf_e23, 327680L);
  float *buf_e24; cudaMalloc(&buf_e24, 327680L);
  float *buf_e25; cudaMalloc(&buf_e25, 327680L);
  float *buf_e26; cudaMalloc(&buf_e26, 327680L);
  float *buf_e27; cudaMalloc(&buf_e27, 327680L);
  float *buf_e28; cudaMalloc(&buf_e28, 327680L);
  float *buf_e29; cudaMalloc(&buf_e29, 327680L);
  float *buf_e30; cudaMalloc(&buf_e30, 327680L);
  float *buf_e31; cudaMalloc(&buf_e31, 327680L);
  float *buf_e32; cudaMalloc(&buf_e32, 327680L);
  float *buf_e33; cudaMalloc(&buf_e33, 2621440L);
  float *buf_e34; cudaMalloc(&buf_e34, 2621440L);
  float *buf_e35; cudaMalloc(&buf_e35, 2621440L);
  // shuffle_input: host[i] -> dev[128*(i%1) + (i/(128*1))*(128*1) + ((i/1)%128)]
  dim3 grid(4), block(4096);
  streamit_swp_kernel<<<grid, block>>>(buf_e0, buf_e1, buf_e2, buf_e3, buf_e5, buf_e6, buf_e7, buf_e8, buf_e9, buf_e10, buf_e11, buf_e12, buf_e13, buf_e14, buf_e15, buf_e16, buf_e17, buf_e18, buf_e19, buf_e20, buf_e21, buf_e22, buf_e23, buf_e24, buf_e25, buf_e26, buf_e27, buf_e28, buf_e29, buf_e30, buf_e31, buf_e32, buf_e33, buf_e34, buf_e35, buf_in, buf_out, iterations + 8);
  cudaDeviceSynchronize();
}
