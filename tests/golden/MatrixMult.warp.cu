// Auto-generated warp-specialized software-pipelined StreamIt kernel
// schema: one persistent block per SM; each scheduled instance
// owns a dedicated warp group, so producers and consumers run
// concurrently. Intra-SM channels are bounded shared-memory ring
// queues with ticket-based push/pop (zero global-memory
// transactions); cross-SM channels keep the global
// cluster-shuffle rings, separated per pipeline iteration by a
// software grid barrier.
#include <cuda_runtime.h>

__device__ __forceinline__ long IDX_E0(long q) {
  long slot = (q / 16384L) % 10L;
  long r = q % 16384L;
  long t = r / 16L, n = r % 16L;
  r = 128L * n + (t / 128L) * 128L * 16L + (t % 128L);
  return slot * 16384L + r;
}

__device__ __forceinline__ long IDX_E1(long q) {
  long slot = (q / 65536L) % 10L;
  long r = q % 65536L;
  long t = r / 4L, n = r % 4L;
  r = 128L * n + (t / 128L) * 128L * 4L + (t % 128L);
  return slot * 65536L + r;
}

__device__ __forceinline__ long IDX_E2(long q) {
  long slot = (q / 16384L) % 10L;
  long r = q % 16384L;
  long t = r / 16L, n = r % 16L;
  r = 128L * n + (t / 128L) * 128L * 16L + (t % 128L);
  return slot * 16384L + r;
}

__device__ __forceinline__ long IDX_E3(long q) {
  long slot = (q / 16384L) % 10L;
  long r = q % 16384L;
  long t = r / 16L, n = r % 16L;
  r = 128L * n + (t / 128L) * 128L * 16L + (t % 128L);
  return slot * 16384L + r;
}

__device__ __forceinline__ long IDX_E4(long q) {
  long slot = (q / 65536L) % 10L;
  long r = q % 65536L;
  long t = r / 4L, n = r % 4L;
  r = 128L * n + (t / 128L) * 128L * 4L + (t % 128L);
  return slot * 65536L + r;
}

__device__ __forceinline__ long IDX_E5(long q) {
  long slot = (q / 32768L) % 10L;
  long r = q % 32768L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 32768L + r;
}

__device__ __forceinline__ long IDX_E6(long q) {
  long slot = (q / 4096L) % 10L;
  long r = q % 4096L;
  long t = r / 1L, n = r % 1L;
  r = 128L * n + (t / 128L) * 128L * 1L + (t % 128L);
  return slot * 4096L + r;
}

__device__ __forceinline__ long IDX_E7(long q) {
  long slot = (q / 32768L) % 10L;
  long r = q % 32768L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 32768L + r;
}

__device__ __forceinline__ long IDX_E8(long q) {
  long slot = (q / 4096L) % 10L;
  long r = q % 4096L;
  long t = r / 1L, n = r % 1L;
  r = 128L * n + (t / 128L) * 128L * 1L + (t % 128L);
  return slot * 4096L + r;
}

__device__ __forceinline__ long IDX_E9(long q) {
  long slot = (q / 32768L) % 10L;
  long r = q % 32768L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 32768L + r;
}

__device__ __forceinline__ long IDX_E10(long q) {
  long slot = (q / 4096L) % 10L;
  long r = q % 4096L;
  long t = r / 1L, n = r % 1L;
  r = 128L * n + (t / 128L) * 128L * 1L + (t % 128L);
  return slot * 4096L + r;
}

__device__ __forceinline__ long IDX_E11(long q) {
  long slot = (q / 32768L) % 10L;
  long r = q % 32768L;
  long t = r / 8L, n = r % 8L;
  r = 128L * n + (t / 128L) * 128L * 8L + (t % 128L);
  return slot * 32768L + r;
}

__device__ __forceinline__ long IDX_E12(long q) {
  long slot = (q / 4096L) % 10L;
  long r = q % 4096L;
  long t = r / 1L, n = r % 1L;
  r = 128L * n + (t / 128L) * 128L * 1L + (t % 128L);
  return slot * 4096L + r;
}

__device__ __forceinline__ long IDX_E13(long q) {
  long slot = (q / 131072L) % 10L;
  long r = q % 131072L;
  long t = r / 32L, n = r % 32L;
  r = 128L * n + (t / 128L) * 128L * 32L + (t % 128L);
  return slot * 131072L + r;
}

__device__ __forceinline__ long IDX_E14(long q) {
  long slot = (q / 32768L) % 10L;
  long r = q % 32768L;
  long t = r / 32L, n = r % 32L;
  r = 128L * n + (t / 128L) * 128L * 32L + (t % 128L);
  return slot * 32768L + r;
}

__device__ __forceinline__ long IDX_E15(long q) {
  long slot = (q / 16384L) % 10L;
  long r = q % 16384L;
  long t = r / 1L, n = r % 1L;
  r = 128L * n + (t / 128L) * 128L * 1L + (t % 128L);
  return slot * 16384L + r;
}

// Software grid barrier: block 0..gridDim-1 arrive, everyone
// spins until the arrival count reaches the per-iteration goal.
// Release/acquire pair: the fence before the arrival add
// publishes this SM's ring writes; the fence after the spin
// keeps the next iteration's cross-SM ring reads from seeing
// stale pre-barrier data in a non-coherent L1.
__device__ unsigned int swp_barrier_arrived = 0u;
__device__ void global_barrier(unsigned int goal) {
  __syncthreads();
  if (threadIdx.x == 0) {
    __threadfence();
    atomicAdd(&swp_barrier_arrived, 1u);
    while (((volatile unsigned int *)&swp_barrier_arrived)[0] < goal) { }
    __threadfence();
  }
  __syncthreads();
}

__device__ const int f3_perm[16] = {0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15};

__device__ void move_0_split#0(const float *__in0, long __iq0, float *__out0, long __oq0, float *__out1, long __oq1) {
  for (int i = 0; i < 16; ++i)
    __out0[IDX_E0(__oq0 + i)] = __in0[IDX_E14(__iq0 + 0 + i)];
  for (int i = 0; i < 16; ++i)
    __out1[IDX_E3(__oq1 + i)] = __in0[IDX_E14(__iq0 + 16 + i)];
}

__device__ void move_1_join#1(const float *__in0, long __iq0, const float *__in1, long __iq1, float *__out0, long __oq0) {
  for (int i = 0; i < 4; ++i)
    __out0[IDX_E13(__oq0 + 0 + i)] = __in0[IDX_E1(__iq0 + i)];
  for (int i = 0; i < 4; ++i)
    __out0[IDX_E13(__oq0 + 4 + i)] = __in1[IDX_E4(__iq1 + i)];
}

__device__ void work_2_DuplicateRows(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  for (int r = 0; r < 4; r += 1) {
    for (int c = 0; c < 4; c += 1) {
      for (int i = 0; i < 4; i += 1) {
        __out[IDX_E1(__out_q0 + (__push_idx++))] = __in[IDX_E0(__in_q0 + __pop_idx + (r * 4 + i))];
      }
    }
  }
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
  __in[IDX_E0(__in_q0 + (__pop_idx++))];
}

__device__ void work_3_TransposeB(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  #define perm f3_perm
  for (int i = 0; i < 16; i += 1) {
    __out[IDX_E2(__out_q0 + (__push_idx++))] = __in[IDX_E3(__in_q0 + __pop_idx + (perm[i]))];
  }
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  __in[IDX_E3(__in_q0 + (__pop_idx++))];
  #undef perm
}

__device__ void work_4_DuplicateBlock(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  for (int r = 0; r < 4; r += 1) {
    for (int i = 0; i < 16; i += 1) {
      __out[IDX_E4(__out_q0 + (__push_idx++))] = __in[IDX_E2(__in_q0 + __pop_idx + (i))];
    }
  }
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
  __in[IDX_E2(__in_q0 + (__pop_idx++))];
}

__device__ void move_5_split#5(const float *__in0, long __iq0, float *__out0, long __oq0, float *__out1, long __oq1, float *__out2, long __oq2, float *__out3, long __oq3) {
  for (int i = 0; i < 8; ++i)
    __out0[IDX_E5(__oq0 + i)] = __in0[IDX_E13(__iq0 + 0 + i)];
  for (int i = 0; i < 8; ++i)
    __out1[IDX_E7(__oq1 + i)] = __in0[IDX_E13(__iq0 + 8 + i)];
  for (int i = 0; i < 8; ++i)
    __out2[IDX_E9(__oq2 + i)] = __in0[IDX_E13(__iq0 + 16 + i)];
  for (int i = 0; i < 8; ++i)
    __out3[IDX_E11(__oq3 + i)] = __in0[IDX_E13(__iq0 + 24 + i)];
}

__device__ void move_6_join#6(const float *__in0, long __iq0, const float *__in1, long __iq1, const float *__in2, long __iq2, const float *__in3, long __iq3, float *__out0, long __oq0) {
  for (int i = 0; i < 1; ++i)
    __out0[IDX_E15(__oq0 + 0 + i)] = __in0[IDX_E6(__iq0 + i)];
  for (int i = 0; i < 1; ++i)
    __out0[IDX_E15(__oq0 + 1 + i)] = __in1[IDX_E8(__iq1 + i)];
  for (int i = 0; i < 1; ++i)
    __out0[IDX_E15(__oq0 + 2 + i)] = __in2[IDX_E10(__iq2 + i)];
  for (int i = 0; i < 1; ++i)
    __out0[IDX_E15(__oq0 + 3 + i)] = __in3[IDX_E12(__iq3 + i)];
}

__device__ void work_7_Dot_0(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  float sum;
  sum = 0.0f;
  for (int i = 0; i < 4; i += 1) {
    sum = sum + __in[IDX_E5(__in_q0 + __pop_idx + (i))] * __in[IDX_E5(__in_q0 + __pop_idx + (i + 4))];
  }
  __out[IDX_E6(__out_q0 + (__push_idx++))] = sum;
  __in[IDX_E5(__in_q0 + (__pop_idx++))];
  __in[IDX_E5(__in_q0 + (__pop_idx++))];
  __in[IDX_E5(__in_q0 + (__pop_idx++))];
  __in[IDX_E5(__in_q0 + (__pop_idx++))];
  __in[IDX_E5(__in_q0 + (__pop_idx++))];
  __in[IDX_E5(__in_q0 + (__pop_idx++))];
  __in[IDX_E5(__in_q0 + (__pop_idx++))];
  __in[IDX_E5(__in_q0 + (__pop_idx++))];
}

__device__ void work_8_Dot_1(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  float sum;
  sum = 0.0f;
  for (int i = 0; i < 4; i += 1) {
    sum = sum + __in[IDX_E7(__in_q0 + __pop_idx + (i))] * __in[IDX_E7(__in_q0 + __pop_idx + (i + 4))];
  }
  __out[IDX_E8(__out_q0 + (__push_idx++))] = sum;
  __in[IDX_E7(__in_q0 + (__pop_idx++))];
  __in[IDX_E7(__in_q0 + (__pop_idx++))];
  __in[IDX_E7(__in_q0 + (__pop_idx++))];
  __in[IDX_E7(__in_q0 + (__pop_idx++))];
  __in[IDX_E7(__in_q0 + (__pop_idx++))];
  __in[IDX_E7(__in_q0 + (__pop_idx++))];
  __in[IDX_E7(__in_q0 + (__pop_idx++))];
  __in[IDX_E7(__in_q0 + (__pop_idx++))];
}

__device__ void work_9_Dot_2(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  float sum;
  sum = 0.0f;
  for (int i = 0; i < 4; i += 1) {
    sum = sum + __in[IDX_E9(__in_q0 + __pop_idx + (i))] * __in[IDX_E9(__in_q0 + __pop_idx + (i + 4))];
  }
  __out[IDX_E10(__out_q0 + (__push_idx++))] = sum;
  __in[IDX_E9(__in_q0 + (__pop_idx++))];
  __in[IDX_E9(__in_q0 + (__pop_idx++))];
  __in[IDX_E9(__in_q0 + (__pop_idx++))];
  __in[IDX_E9(__in_q0 + (__pop_idx++))];
  __in[IDX_E9(__in_q0 + (__pop_idx++))];
  __in[IDX_E9(__in_q0 + (__pop_idx++))];
  __in[IDX_E9(__in_q0 + (__pop_idx++))];
  __in[IDX_E9(__in_q0 + (__pop_idx++))];
}

__device__ void work_10_Dot_3(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  float sum;
  sum = 0.0f;
  for (int i = 0; i < 4; i += 1) {
    sum = sum + __in[IDX_E11(__in_q0 + __pop_idx + (i))] * __in[IDX_E11(__in_q0 + __pop_idx + (i + 4))];
  }
  __out[IDX_E12(__out_q0 + (__push_idx++))] = sum;
  __in[IDX_E11(__in_q0 + (__pop_idx++))];
  __in[IDX_E11(__in_q0 + (__pop_idx++))];
  __in[IDX_E11(__in_q0 + (__pop_idx++))];
  __in[IDX_E11(__in_q0 + (__pop_idx++))];
  __in[IDX_E11(__in_q0 + (__pop_idx++))];
  __in[IDX_E11(__in_q0 + (__pop_idx++))];
  __in[IDX_E11(__in_q0 + (__pop_idx++))];
  __in[IDX_E11(__in_q0 + (__pop_idx++))];
}

__device__ void work_11___input(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  __out[IDX_E14(__out_q0 + (__push_idx++))] = __in[IDX_IN(__in_q0 + (__pop_idx++))];
}

__device__ void work_12___output(const float *__in, long __in_q0, float *__out, long __out_q0) {
  int __pop_idx = 0;
  int __push_idx = 0;
  (void)__pop_idx; (void)__push_idx;
  __out[IDX_OUT(__out_q0 + (__push_idx++))] = __in[IDX_E15(__in_q0 + (__pop_idx++))];
}

// Staging predicate: instance with stage f runs the work of
// logical iteration (it - f); negative means prologue idle.
__global__ void streamit_swp_kernel(float *buf_e0, float *buf_e1, float *buf_e2, float *buf_e3, float *buf_e4, float *buf_e5, float *buf_e6, float *buf_e7, float *buf_e8, float *buf_e9, float *buf_e10, float *buf_e11, float *buf_e12, float *buf_e13, float *buf_e14, float *buf_e15, const float *buf_in, float *buf_out, int iterations) {
  for (int it = 0; it < iterations; ++it) {
  switch (blockIdx.x) {
  case 0: {
    // o=0 f=4 join#1 instance 2  warps [0, 4)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 0;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 2L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=0 f=4 join#1 instance 4  warps [4, 8)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 128;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 4L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=0 f=4 join#1 instance 6  warps [8, 12)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 256;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 6L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=0 f=4 join#1 instance 8  warps [12, 16)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 384;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 8L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=0 f=4 join#1 instance 12  warps [16, 20)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 512;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 12L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=0 f=2 DuplicateRows#2 instance 0  warps [20, 24)
    { int j = it - 2;
      int tid = (int)threadIdx.x - 640;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_2_DuplicateRows(buf_e0, b * 16L, buf_e1, b * 64L);
        }
      }
    }
    // o=0 f=6 Dot_0#7 instance 0  warps [24, 28)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 768;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 0L) * 128L + tid;
          work_7_Dot_0(buf_e5, b * 8L, buf_e6, b * 1L);
        }
      }
    }
    // o=0 f=6 Dot_1#8 instance 0  warps [28, 32)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 896;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 0L) * 128L + tid;
          work_8_Dot_1(buf_e7, b * 8L, buf_e8, b * 1L);
        }
      }
    }
    // o=0 f=6 Dot_2#9 instance 0  warps [32, 36)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 1024;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 0L) * 128L + tid;
          work_9_Dot_2(buf_e9, b * 8L, buf_e10, b * 1L);
        }
      }
    }
    // o=0 f=6 Dot_3#10 instance 0  warps [36, 40)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 1152;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 0L) * 128L + tid;
          work_10_Dot_3(buf_e11, b * 8L, buf_e12, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 1  warps [40, 44)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1280;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 1L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 3  warps [44, 48)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1408;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 3L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 5  warps [48, 52)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1536;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 5L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 7  warps [52, 56)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1664;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 7L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 9  warps [56, 60)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1792;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 9L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 11  warps [60, 64)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1920;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 11L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 13  warps [64, 68)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2048;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 13L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 16  warps [68, 72)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2176;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 16L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 19  warps [72, 76)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2304;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 19L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 22  warps [76, 80)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2432;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 22L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 25  warps [80, 84)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2560;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 25L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 28  warps [84, 88)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2688;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 28L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=8 __output instance 4  warps [88, 92)
    { int j = it - 8;
      int tid = (int)threadIdx.x - 2816;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 4L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=0 f=8 __output instance 7  warps [92, 96)
    { int j = it - 8;
      int tid = (int)threadIdx.x - 2944;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 7L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=0 f=8 __output instance 10  warps [96, 100)
    { int j = it - 8;
      int tid = (int)threadIdx.x - 3072;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 10L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=0 f=7 __output instance 13  warps [100, 104)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 3200;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 13L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    break;
  }
  case 1: {
    // o=0 f=3 DuplicateBlock#4 instance 0  warps [0, 4)
    { int j = it - 3;
      int tid = (int)threadIdx.x - 0;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_4_DuplicateBlock(buf_e2, b * 16L, buf_e4, b * 64L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=6 Dot_0#7 instance 1  warps [4, 8)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 128;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 1L) * 128L + tid;
          work_7_Dot_0(buf_e5, b * 8L, buf_e6, b * 1L);
        }
      }
    }
    // o=0 f=6 Dot_1#8 instance 1  warps [8, 12)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 256;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 1L) * 128L + tid;
          work_8_Dot_1(buf_e7, b * 8L, buf_e8, b * 1L);
        }
      }
    }
    // o=0 f=6 Dot_2#9 instance 1  warps [12, 16)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 384;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 1L) * 128L + tid;
          work_9_Dot_2(buf_e9, b * 8L, buf_e10, b * 1L);
        }
      }
    }
    // o=0 f=6 Dot_3#10 instance 1  warps [16, 20)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 512;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 1L) * 128L + tid;
          work_10_Dot_3(buf_e11, b * 8L, buf_e12, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 31  warps [20, 24)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 640;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 31L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=8 __output instance 6  warps [24, 28)
    { int j = it - 8;
      int tid = (int)threadIdx.x - 768;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 6L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=0 f=8 __output instance 9  warps [28, 32)
    { int j = it - 8;
      int tid = (int)threadIdx.x - 896;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 9L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=0 f=7 __output instance 12  warps [32, 36)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 1024;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 12L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=0 f=7 __output instance 15  warps [36, 40)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 1152;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 15L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=31521.9 f=3 join#1 instance 0  warps [40, 44)
    { int j = it - 3;
      int tid = (int)threadIdx.x - 1280;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 0L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=31521.9 f=3 join#1 instance 1  warps [44, 48)
    { int j = it - 3;
      int tid = (int)threadIdx.x - 1408;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 1L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=31521.9 f=3 join#1 instance 3  warps [48, 52)
    { int j = it - 3;
      int tid = (int)threadIdx.x - 1536;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 3L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=31521.9 f=3 join#1 instance 5  warps [52, 56)
    { int j = it - 3;
      int tid = (int)threadIdx.x - 1664;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 5L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=31521.9 f=3 join#1 instance 7  warps [56, 60)
    { int j = it - 3;
      int tid = (int)threadIdx.x - 1792;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 7L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=31521.9 f=3 join#1 instance 11  warps [60, 64)
    { int j = it - 3;
      int tid = (int)threadIdx.x - 1920;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 11L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=31521.9 f=3 join#1 instance 15  warps [64, 68)
    { int j = it - 3;
      int tid = (int)threadIdx.x - 2048;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 15L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    break;
  }
  case 2: {
    // o=0 f=1 split#0 instance 0  warps [0, 4)
    { int j = it - 1;
      int tid = (int)threadIdx.x - 0;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          move_0_split#0(buf_e14, b * 32L, buf_e0, 0L + b * 16L, buf_e3, 0L + b * 16L);
        }
      }
    }
    // o=0 f=4 join#1 instance 10  warps [4, 8)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 128;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 10L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=0 f=4 join#1 instance 14  warps [8, 12)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 256;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 14L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=0 f=5 split#5 instance 1  warps [12, 16)
    { int j = it - 5;
      int tid = (int)threadIdx.x - 384;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 1L) * 128L + tid;
          move_5_split#5(buf_e13, b * 32L, buf_e5, 0L + b * 8L, buf_e7, 0L + b * 8L, buf_e9, 0L + b * 8L, buf_e11, 0L + b * 8L);
        }
      }
    }
    // o=0 f=5 split#5 instance 3  warps [16, 20)
    { int j = it - 5;
      int tid = (int)threadIdx.x - 512;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 3L) * 128L + tid;
          move_5_split#5(buf_e13, b * 32L, buf_e5, 0L + b * 8L, buf_e7, 0L + b * 8L, buf_e9, 0L + b * 8L, buf_e11, 0L + b * 8L);
        }
      }
    }
    // o=0 f=6 Dot_0#7 instance 2  warps [20, 24)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 640;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 2L) * 128L + tid;
          work_7_Dot_0(buf_e5, b * 8L, buf_e6, b * 1L);
        }
      }
    }
    // o=0 f=6 Dot_1#8 instance 2  warps [24, 28)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 768;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 2L) * 128L + tid;
          work_8_Dot_1(buf_e7, b * 8L, buf_e8, b * 1L);
        }
      }
    }
    // o=0 f=6 Dot_2#9 instance 2  warps [28, 32)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 896;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 2L) * 128L + tid;
          work_9_Dot_2(buf_e9, b * 8L, buf_e10, b * 1L);
        }
      }
    }
    // o=0 f=6 Dot_3#10 instance 2  warps [32, 36)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 1024;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 2L) * 128L + tid;
          work_10_Dot_3(buf_e11, b * 8L, buf_e12, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 0  warps [36, 40)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1152;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 0L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 2  warps [40, 44)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1280;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 2L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 4  warps [44, 48)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1408;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 4L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 6  warps [48, 52)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1536;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 6L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 8  warps [52, 56)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1664;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 8L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 10  warps [56, 60)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1792;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 10L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 12  warps [60, 64)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1920;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 12L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 15  warps [64, 68)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2048;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 15L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 18  warps [68, 72)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2176;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 18L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 21  warps [72, 76)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2304;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 21L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 24  warps [76, 80)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2432;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 24L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 27  warps [80, 84)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2560;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 27L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 30  warps [84, 88)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2688;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 30L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=8 __output instance 5  warps [88, 92)
    { int j = it - 8;
      int tid = (int)threadIdx.x - 2816;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 5L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=0 f=8 __output instance 8  warps [92, 96)
    { int j = it - 8;
      int tid = (int)threadIdx.x - 2944;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 8L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=0 f=8 __output instance 11  warps [96, 100)
    { int j = it - 8;
      int tid = (int)threadIdx.x - 3072;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 11L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=0 f=7 __output instance 14  warps [100, 104)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 3200;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 14L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    break;
  }
  case 3: {
    // o=0 f=4 join#1 instance 9  warps [0, 4)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 0;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 9L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=0 f=4 join#1 instance 13  warps [4, 8)
    { int j = it - 4;
      int tid = (int)threadIdx.x - 128;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 13L) * 128L + tid;
          move_1_join#1(buf_e1, b * 4L, buf_e4, b * 4L, buf_e13, 0L + b * 8L);
        }
      }
    }
    // o=0 f=2 TransposeB#3 instance 0  warps [8, 12)
    { int j = it - 2;
      int tid = (int)threadIdx.x - 256;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 1L + 0L) * 128L + tid;
          work_3_TransposeB(buf_e3, b * 16L, buf_e2, b * 16L);
        }
      }
    }
    // o=0 f=5 split#5 instance 0  warps [12, 16)
    { int j = it - 5;
      int tid = (int)threadIdx.x - 384;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 0L) * 128L + tid;
          move_5_split#5(buf_e13, b * 32L, buf_e5, 0L + b * 8L, buf_e7, 0L + b * 8L, buf_e9, 0L + b * 8L, buf_e11, 0L + b * 8L);
        }
      }
    }
    // o=0 f=5 split#5 instance 2  warps [16, 20)
    { int j = it - 5;
      int tid = (int)threadIdx.x - 512;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 2L) * 128L + tid;
          move_5_split#5(buf_e13, b * 32L, buf_e5, 0L + b * 8L, buf_e7, 0L + b * 8L, buf_e9, 0L + b * 8L, buf_e11, 0L + b * 8L);
        }
      }
    }
    // o=0 f=7 join#6 instance 0  warps [20, 24)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 640;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 0L) * 128L + tid;
          move_6_join#6(buf_e6, b * 1L, buf_e8, b * 1L, buf_e10, b * 1L, buf_e12, b * 1L, buf_e15, 0L + b * 4L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=7 join#6 instance 1  warps [24, 28)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 768;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 1L) * 128L + tid;
          move_6_join#6(buf_e6, b * 1L, buf_e8, b * 1L, buf_e10, b * 1L, buf_e12, b * 1L, buf_e15, 0L + b * 4L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=7 join#6 instance 2  warps [28, 32)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 896;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 2L) * 128L + tid;
          move_6_join#6(buf_e6, b * 1L, buf_e8, b * 1L, buf_e10, b * 1L, buf_e12, b * 1L, buf_e15, 0L + b * 4L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=6 Dot_0#7 instance 3  warps [32, 36)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 1024;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 3L) * 128L + tid;
          work_7_Dot_0(buf_e5, b * 8L, buf_e6, b * 1L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=6 Dot_1#8 instance 3  warps [36, 40)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 1152;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 3L) * 128L + tid;
          work_8_Dot_1(buf_e7, b * 8L, buf_e8, b * 1L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=6 Dot_2#9 instance 3  warps [40, 44)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 1280;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 3L) * 128L + tid;
          work_9_Dot_2(buf_e9, b * 8L, buf_e10, b * 1L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=6 Dot_3#10 instance 3  warps [44, 48)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 1408;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 3L) * 128L + tid;
          work_10_Dot_3(buf_e11, b * 8L, buf_e12, b * 1L);
        }
      }
    }
    // o-order: a global edge is consumed at this stage on this SM
    __syncthreads();
    // o=0 f=0 __input instance 14  warps [48, 52)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1536;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 14L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 17  warps [52, 56)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1664;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 17L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 20  warps [56, 60)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1792;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 20L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 23  warps [60, 64)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 1920;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 23L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 26  warps [64, 68)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2048;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 26L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=0 f=0 __input instance 29  warps [68, 72)
    { int j = it - 0;
      int tid = (int)threadIdx.x - 2176;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 32L + 29L) * 128L + tid;
          work_11___input(buf_in, b * 1L, buf_e14, b * 1L);
        }
      }
    }
    // o=1928.3 f=7 __output instance 0  warps [72, 76)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 2304;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 0L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=1928.3 f=7 __output instance 1  warps [76, 80)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 2432;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 1L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=1928.3 f=7 __output instance 2  warps [80, 84)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 2560;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 2L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=1928.3 f=7 __output instance 3  warps [84, 88)
    { int j = it - 7;
      int tid = (int)threadIdx.x - 2688;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 16L + 3L) * 128L + tid;
          work_12___output(buf_e15, b * 1L, buf_out, b * 1L);
        }
      }
    }
    // o=3886.7 f=6 join#6 instance 3  warps [88, 92)
    { int j = it - 6;
      int tid = (int)threadIdx.x - 2816;
      if (j >= 0 && tid >= 0 && tid < 128) {
        for (int c = 0; c < 8; ++c) {
          long b = 0L + (((long)j * 8 + c) * 4L + 3L) * 128L + tid;
          move_6_join#6(buf_e6, b * 1L, buf_e8, b * 1L, buf_e10, b * 1L, buf_e12, b * 1L, buf_e15, 0L + b * 4L);
        }
      }
    }
    break;
  }
  default: break;
  }
  global_barrier(4u * (unsigned int)(it + 1));
  }
}

// Host driver: allocates the global ring buffers (queue edges
// live in shared memory), shuffles the program input per Eq. 9
// and launches the persistent kernel once.
void run_streamit_program(int iterations) {
  float *buf_e0; cudaMalloc(&buf_e0, 655360L);
  float *buf_e1; cudaMalloc(&buf_e1, 2621440L);
  float *buf_e2; cudaMalloc(&buf_e2, 655360L);
  float *buf_e3; cudaMalloc(&buf_e3, 655360L);
  float *buf_e4; cudaMalloc(&buf_e4, 2621440L);
  float *buf_e5; cudaMalloc(&buf_e5, 1310720L);
  float *buf_e6; cudaMalloc(&buf_e6, 163840L);
  float *buf_e7; cudaMalloc(&buf_e7, 1310720L);
  float *buf_e8; cudaMalloc(&buf_e8, 163840L);
  float *buf_e9; cudaMalloc(&buf_e9, 1310720L);
  float *buf_e10; cudaMalloc(&buf_e10, 163840L);
  float *buf_e11; cudaMalloc(&buf_e11, 1310720L);
  float *buf_e12; cudaMalloc(&buf_e12, 163840L);
  float *buf_e13; cudaMalloc(&buf_e13, 5242880L);
  float *buf_e14; cudaMalloc(&buf_e14, 1310720L);
  float *buf_e15; cudaMalloc(&buf_e15, 655360L);
  // shuffle_input: host[i] -> dev[128*(i%1) + (i/(128*1))*(128*1) + ((i/1)%128)]
  dim3 grid(4), block(3328);
  streamit_swp_kernel<<<grid, block>>>(buf_e0, buf_e1, buf_e2, buf_e3, buf_e4, buf_e5, buf_e6, buf_e7, buf_e8, buf_e9, buf_e10, buf_e11, buf_e12, buf_e13, buf_e14, buf_e15, buf_in, buf_out, iterations + 8);
  cudaDeviceSynchronize();
}
