//===- tests/golden_codegen_test.cpp - CUDA emitter golden files ------------===//
//
// Full-text golden tests for the CUDA emitter on two Table I benchmarks.
// The structural checks in codegen_test.cpp catch missing pieces; these
// catch everything else — a drifted index expression, a reordered case
// arm, a renamed buffer — by diffing the whole translation unit against
// tests/golden/<Name>.cu (whitespace-run normalized, so formatting-only
// emitter changes don't churn the goldens).
//
// Regenerate after an intentional emitter change with:
//   SGPU_UPDATE_GOLDEN=1 ./build/tests/golden_codegen_test
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "codegen/CudaEmitter.h"
#include "codegen/schema/SchemaSelect.h"
#include "core/IlpScheduler.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace sgpu;

namespace {

/// Emits the benchmark's .cu through the deterministic heuristic
/// scheduler (no ILP, one worker, node budgets instead of wall clock) so
/// the golden text is machine-independent. \p Kind picks the kernel
/// schema; WarpSpecialized also runs the budgeted per-edge queue
/// selection so the golden pins the ring-queue emission, not just the
/// persistent-kernel scaffolding.
std::string emitBenchmark(const std::string &Name,
                          SchemaKind Kind = SchemaKind::GlobalChannel) {
  const bench::BenchmarkSpec *Spec = bench::findBenchmark(Name);
  EXPECT_NE(Spec, nullptr) << Name << " missing from the registry";
  if (!Spec)
    return "";
  StreamPtr S = Spec->Build();
  StreamGraph G = flatten(*S);
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  const GpuArch Arch = GpuArch::geForce8800GTS512();
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  EXPECT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);
  SchedulerOptions SO;
  SO.Pmax = 4;
  SO.UseIlp = false;
  SO.NumWorkers = 1;
  SO.TimeBudgetSeconds = 1e9; // node budgets, not wall clock, cut the search
  auto Sched = scheduleSwp(G, *SS, *Config, GSS, SO);
  EXPECT_TRUE(Sched.has_value());
  auto Err = verifySchedule(G, *SS, *Config, GSS, Sched->Schedule);
  EXPECT_FALSE(Err.has_value()) << *Err;
  CudaEmitOptions EO;
  EO.Layout = LayoutKind::Shuffled;
  EO.Coarsening = 8; // the SWP8 headline configuration
  SchemaAssignment Schema = selectSchemaAssignment(
      Arch, G, *SS, *Config, GSS, Sched->Schedule, Kind, EO.Coarsening);
  return createKernelSchema(Kind)->emit(G, *SS, *Config, GSS,
                                        Sched->Schedule, Schema, EO);
}

/// Collapses every whitespace run to one space and trims line ends, so
/// the comparison is insensitive to indentation and blank-line churn.
std::string normalize(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  bool InSpace = false;
  for (char C : Text) {
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      InSpace = true;
      continue;
    }
    if (InSpace && !Out.empty())
      Out += ' ';
    InSpace = false;
    Out += C;
  }
  return Out;
}

std::string goldenPath(const std::string &Name, SchemaKind Kind) {
  return std::string(SGPU_SOURCE_DIR) + "/tests/golden/" + Name +
         (Kind == SchemaKind::WarpSpecialized ? ".warp.cu" : ".cu");
}

void checkGolden(const std::string &Name,
                 SchemaKind Kind = SchemaKind::GlobalChannel) {
  std::string Src = emitBenchmark(Name, Kind);
  ASSERT_FALSE(Src.empty());

  const std::string Path = goldenPath(Name, Kind);
  if (std::getenv("SGPU_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Src;
    SUCCEED() << "regenerated " << Path;
    return;
  }

  std::ifstream In(Path);
  ASSERT_TRUE(In.good())
      << Path << " is missing; regenerate with SGPU_UPDATE_GOLDEN=1";
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Golden = Buf.str();

  if (normalize(Src) == normalize(Golden))
    return;
  // Point at the first diverging line rather than dumping two multi-KB
  // translation units.
  std::istringstream A(Golden), B(Src);
  std::string LineA, LineB;
  int LineNo = 1;
  while (true) {
    bool HasA = static_cast<bool>(std::getline(A, LineA));
    bool HasB = static_cast<bool>(std::getline(B, LineB));
    if (!HasA && !HasB)
      break;
    if (normalize(HasA ? LineA : "") != normalize(HasB ? LineB : "")) {
      FAIL() << Path << " diverges from the golden at line " << LineNo
             << "\n  golden:  " << (HasA ? LineA : "<eof>")
             << "\n  emitted: " << (HasB ? LineB : "<eof>")
             << "\nIf the change is intentional, regenerate with "
                "SGPU_UPDATE_GOLDEN=1";
    }
    ++LineNo;
  }
  FAIL() << Path
         << " diverges from the golden only in token spacing across "
            "lines; regenerate with SGPU_UPDATE_GOLDEN=1";
}

} // namespace

TEST(GoldenCodegen, Dct) { checkGolden("DCT"); }

TEST(GoldenCodegen, MatrixMult) { checkGolden("MatrixMult"); }

// Warp-specialized schema goldens for the same two benchmarks: the
// persistent kernel, the warp-group dispatch, and (where the budgeted
// selection admits same-SM edges) the shared-memory ring queues are all
// pinned as full text. Reblessable the same way as the global goldens.
TEST(GoldenCodegen, DctWarp) {
  checkGolden("DCT", SchemaKind::WarpSpecialized);
}

TEST(GoldenCodegen, MatrixMultWarp) {
  checkGolden("MatrixMult", SchemaKind::WarpSpecialized);
}

// The golden contract only holds if emission is deterministic in the
// first place: two independent compiles must render identical text.
TEST(GoldenCodegen, EmissionIsDeterministic) {
  EXPECT_EQ(emitBenchmark("DCT"), emitBenchmark("DCT"));
  EXPECT_EQ(emitBenchmark("DCT", SchemaKind::WarpSpecialized),
            emitBenchmark("DCT", SchemaKind::WarpSpecialized));
}

// The schema interface's GlobalChannel implementation must render the
// same bytes as the original emitCudaSource entry point — the refactor
// behind KernelSchema is not allowed to move the text at all.
TEST(GoldenCodegen, GlobalSchemaMatchesLegacyEmitter) {
  const bench::BenchmarkSpec *Spec = bench::findBenchmark("DCT");
  ASSERT_NE(Spec, nullptr);
  StreamPtr S = Spec->Build();
  StreamGraph G = flatten(*S);
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  ProfileTable PT =
      profileGraph(GpuArch::geForce8800GTS512(), G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  ASSERT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);
  SchedulerOptions SO;
  SO.Pmax = 4;
  SO.UseIlp = false;
  SO.NumWorkers = 1;
  SO.TimeBudgetSeconds = 1e9;
  auto Sched = scheduleSwp(G, *SS, *Config, GSS, SO);
  ASSERT_TRUE(Sched.has_value());
  CudaEmitOptions EO;
  EO.Layout = LayoutKind::Shuffled;
  EO.Coarsening = 8;
  SchemaAssignment AllGlobal;
  EXPECT_EQ(createKernelSchema(SchemaKind::GlobalChannel)
                ->emit(G, *SS, *Config, GSS, Sched->Schedule, AllGlobal, EO),
            emitCudaSource(G, *SS, *Config, GSS, Sched->Schedule, EO));
}
