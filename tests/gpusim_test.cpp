//===- tests/gpusim_test.cpp - Occupancy and timing model tests -------------===//

#include "gpusim/KernelTiming.h"
#include "gpusim/Occupancy.h"

#include <gtest/gtest.h>

using namespace sgpu;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

InstanceCost baseCost() {
  InstanceCost C;
  C.Threads = 256;
  C.ComputeOps = 100;
  C.GlobalAccesses = 8;
  C.TxnsPerAccess = 1.0 / 16.0;
  return C;
}

} // namespace

TEST(GpuArch, PaperParameters) {
  EXPECT_EQ(Arch.NumSMs, 16);
  EXPECT_EQ(Arch.ScalarUnitsPerSM, 8);
  EXPECT_EQ(Arch.WarpSize, 32);
  EXPECT_EQ(Arch.MaxThreadsPerSM, 768);
  EXPECT_EQ(Arch.MaxThreadsPerBlock, 512);
  EXPECT_EQ(Arch.MaxBlocksPerSM, 8);
  EXPECT_EQ(Arch.RegistersPerSM, 8192);
  EXPECT_EQ(Arch.SharedMemPerSM, 16384);
  EXPECT_GE(Arch.MemLatencyCycles, 400);
  EXPECT_LE(Arch.MemLatencyCycles, 600);
}

TEST(Occupancy, PaperRegisterThreadPairs) {
  // Fig. 6: limits {16,20,32,64} let kernels run with {512,384,256,128}
  // threads respectively (one block must fit the 8192-register file).
  EXPECT_TRUE(computeOccupancy(Arch, 512, 16, 0).Feasible);
  EXPECT_TRUE(computeOccupancy(Arch, 384, 20, 0).Feasible);
  EXPECT_TRUE(computeOccupancy(Arch, 256, 32, 0).Feasible);
  EXPECT_TRUE(computeOccupancy(Arch, 128, 64, 0).Feasible);
  // And the over-budget combinations fail, as the paper describes.
  EXPECT_FALSE(computeOccupancy(Arch, 512, 20, 0).Feasible);
  EXPECT_FALSE(computeOccupancy(Arch, 384, 32, 0).Feasible);
  EXPECT_FALSE(computeOccupancy(Arch, 256, 64, 0).Feasible);
}

TEST(Occupancy, BlockLimits) {
  Occupancy O = computeOccupancy(Arch, 128, 10, 0);
  // 768/128 = 6 blocks by threads; 8192/1280 = 6 by registers.
  EXPECT_EQ(O.BlocksPerSM, 6);
  EXPECT_EQ(O.ThreadsPerSM, 768);
  EXPECT_EQ(O.WarpsPerSM, 24);
}

TEST(Occupancy, SharedMemoryLimits) {
  Occupancy O = computeOccupancy(Arch, 64, 10, 8192);
  EXPECT_TRUE(O.Feasible);
  EXPECT_EQ(O.BlocksPerSM, 2); // 16 KB / 8 KB.
  EXPECT_FALSE(computeOccupancy(Arch, 64, 10, 32768).Feasible);
}

TEST(Occupancy, OversizedBlockRejected) {
  EXPECT_FALSE(computeOccupancy(Arch, 1024, 8, 0).Feasible);
}

TEST(Occupancy, DegenerateConfigsAreInfeasibleNotFatal) {
  // Profiling sweeps probe arbitrary configurations; non-positive
  // threads or registers must come back infeasible, not assert.
  EXPECT_FALSE(computeOccupancy(Arch, 0, 16, 0).Feasible);
  EXPECT_FALSE(computeOccupancy(Arch, -128, 16, 0).Feasible);
  EXPECT_FALSE(computeOccupancy(Arch, 256, 0, 0).Feasible);
  EXPECT_FALSE(computeOccupancy(Arch, 256, -8, 0).Feasible);
  EXPECT_FALSE(computeOccupancy(Arch, 256, 16, -1).Feasible);
  Occupancy O = computeOccupancy(Arch, 0, 0, 0);
  EXPECT_EQ(O.BlocksPerSM, 0);
  EXPECT_EQ(O.ThreadsPerSM, 0);
}

TEST(Occupancy, RegisterLimitRounding) {
  // 21 regs x 384 threads = 8064 <= 8192: exactly one block fits; the
  // leftover 128 registers must not round up to a second block.
  Occupancy One = computeOccupancy(Arch, 384, 21, 0);
  EXPECT_TRUE(One.Feasible);
  EXPECT_EQ(One.BlocksPerSM, 1);
  // 21 regs x 128 threads = 2688: 8192/2688 rounds DOWN to 3 blocks.
  Occupancy Three = computeOccupancy(Arch, 128, 21, 0);
  EXPECT_EQ(Three.BlocksPerSM, 3);
  EXPECT_EQ(Three.ThreadsPerSM, 384);
  // One register over budget at full width fails outright.
  EXPECT_FALSE(computeOccupancy(Arch, 512, 17, 0).Feasible);
}

TEST(Occupancy, SharedMemoryGranularity) {
  // A block using the whole 16 KB still launches (boundary inclusive).
  Occupancy Whole = computeOccupancy(Arch, 64, 10, 16384);
  EXPECT_TRUE(Whole.Feasible);
  EXPECT_EQ(Whole.BlocksPerSM, 1);
  EXPECT_FALSE(computeOccupancy(Arch, 64, 10, 16385).Feasible);
  // 16384/5460 = 3.0007...: must truncate to 3 blocks, not round to 4.
  EXPECT_EQ(computeOccupancy(Arch, 64, 10, 5460).BlocksPerSM, 3);
}

TEST(Occupancy, PartialWarpRoundsUp) {
  // 20-thread blocks: 768/20 = 38 blocks by threads, capped at 8 ->
  // 160 threads = 5 full warps exactly; 40-thread blocks -> 320
  // threads = 10 warps; 48-thread blocks -> 384 threads = 12 warps.
  EXPECT_EQ(computeOccupancy(Arch, 20, 10, 0).WarpsPerSM, 5);
  EXPECT_EQ(computeOccupancy(Arch, 40, 10, 0).WarpsPerSM, 10);
  // A partial warp still occupies a scheduling slot: 24 threads x 8
  // blocks = 192 threads = 6 warps exactly, but 25 x 8 = 200 -> 7.
  EXPECT_EQ(computeOccupancy(Arch, 24, 10, 0).WarpsPerSM, 6);
  EXPECT_EQ(computeOccupancy(Arch, 25, 10, 0).WarpsPerSM, 7);
}

TEST(KernelTiming, MoreComputeTakesLonger) {
  InstanceCost A = baseCost(), B = baseCost();
  B.ComputeOps *= 4;
  EXPECT_GT(instanceCycles(Arch, B), instanceCycles(Arch, A));
}

TEST(KernelTiming, UncoalescedIsMuchSlower) {
  InstanceCost C = baseCost();
  C.GlobalAccesses = 64;
  InstanceCost NC = C;
  NC.TxnsPerAccess = 1.0;
  double Coal = instanceCycles(Arch, C);
  double Serial = instanceCycles(Arch, NC);
  EXPECT_GT(Serial, 4.0 * Coal)
      << "16x the transactions must show up as a large slowdown";
}

TEST(KernelTiming, FewThreadsExposeLatency) {
  // The same per-thread work with fewer threads cannot hide latency:
  // per-firing time (cycles / threads) must degrade at low occupancy.
  InstanceCost Small = baseCost(), Big = baseCost();
  Small.Threads = 32;
  Big.Threads = 512;
  double PerFiringSmall = instanceCycles(Arch, Small) / 32.0;
  double PerFiringBig = instanceCycles(Arch, Big) / 512.0;
  EXPECT_GT(PerFiringSmall, PerFiringBig);
}

TEST(KernelTiming, SpillsCostMemoryTraffic) {
  InstanceCost C = baseCost(), Spilled = baseCost();
  Spilled.SpillAccesses = 32;
  EXPECT_GT(instanceCycles(Arch, Spilled), instanceCycles(Arch, C));
  EXPECT_GT(instanceTransactions(Spilled), instanceTransactions(C));
}

TEST(KernelTiming, SharedConflictsAddReplays) {
  InstanceCost C = baseCost(), Conflicted = baseCost();
  C.SharedAccesses = Conflicted.SharedAccesses = 64;
  Conflicted.SharedConflictDegree = 8.0;
  EXPECT_GT(instanceCycles(Arch, Conflicted), instanceCycles(Arch, C));
}

TEST(KernelTiming, KernelLaunchOverheadAdds) {
  KernelWork W;
  W.MaxSmCycles = 1000;
  W.TotalTxns = 0;
  EXPECT_DOUBLE_EQ(kernelCycles(Arch, W),
                   1000.0 + Arch.KernelLaunchCycles);
}

TEST(KernelTiming, ChipBandwidthBoundsKernel) {
  KernelWork W;
  W.MaxSmCycles = 10;
  W.TotalTxns = 1e6;
  EXPECT_GE(kernelCycles(Arch, W), 1e6 * Arch.ChipCyclesPerTxn);
}
