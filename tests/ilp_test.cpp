//===- tests/ilp_test.cpp - Simplex and branch & bound tests ----------------===//

#include "ilp/BranchAndBound.h"
#include "ilp/Simplex.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sgpu;

TEST(Simplex, TwoVarMaximization) {
  // min -x - y s.t. x + 2y <= 4, 3x + y <= 6, 0 <= x,y <= 10.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 10);
  int Y = LP.addContinuousVar("y", 0, 10);
  LP.addConstraint({{X, 1}, {Y, 2}}, RowSense::LE, 4);
  LP.addConstraint({{X, 3}, {Y, 1}}, RowSense::LE, 6);
  LP.setObjective({{X, -1}, {Y, -1}});
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  // Optimum at intersection: x = 8/5, y = 6/5, obj = -14/5.
  EXPECT_NEAR(R.X[X], 1.6, 1e-6);
  EXPECT_NEAR(R.X[Y], 1.2, 1e-6);
  EXPECT_NEAR(R.Objective, -2.8, 1e-6);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + y = 5, x - y = 1.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 100);
  int Y = LP.addContinuousVar("y", 0, 100);
  LP.addConstraint({{X, 1}, {Y, 1}}, RowSense::EQ, 5);
  LP.addConstraint({{X, 1}, {Y, -1}}, RowSense::EQ, 1);
  LP.setObjective({{X, 1}, {Y, 1}});
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[X], 3.0, 1e-6);
  EXPECT_NEAR(R.X[Y], 2.0, 1e-6);
}

TEST(Simplex, GreaterEqualNeedsPhase1) {
  // min x s.t. x >= 3.5.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 100);
  LP.addConstraint({{X, 1}}, RowSense::GE, 3.5);
  LP.setObjective({{X, 1}});
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[X], 3.5, 1e-6);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 1);
  LP.addConstraint({{X, 1}}, RowSense::GE, 2.0);
  LpResult R = solveLpRelaxation(LP);
  EXPECT_EQ(R.Status, LpStatus::Infeasible);
}

TEST(Simplex, RespectsUpperBoundsWithoutRows) {
  // max x + y with only variable bounds: lands at the corner.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 2.5);
  int Y = LP.addContinuousVar("y", 1, 4);
  LP.addConstraint({{X, 1}, {Y, 1}}, RowSense::LE, 100);
  LP.setObjective({{X, -1}, {Y, -1}});
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[X], 2.5, 1e-6);
  EXPECT_NEAR(R.X[Y], 4.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Highly degenerate: many redundant constraints through the origin.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 10);
  int Y = LP.addContinuousVar("y", 0, 10);
  for (int I = 1; I <= 6; ++I)
    LP.addConstraint({{X, double(I)}, {Y, 1.0}}, RowSense::GE, 0.0);
  LP.addConstraint({{X, 1}, {Y, 1}}, RowSense::LE, 3);
  LP.setObjective({{X, -1}, {Y, -2}});
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -6.0, 1e-6);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x with x >= 2 and no upper bound: x grows without limit.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, LinearProgram::Infinity);
  LP.addConstraint({{X, 1}}, RowSense::GE, 2.0);
  LP.setObjective({{X, -1}});
  LpResult R = solveLpRelaxation(LP);
  EXPECT_EQ(R.Status, LpStatus::Unbounded);
}

TEST(Simplex, EqualityOnlySystemWithoutObjective) {
  // A pure equality system (no objective): phase 1 must land exactly on
  // the unique solution x = 4, y = 1, z = 2.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 100);
  int Y = LP.addContinuousVar("y", 0, 100);
  int Z = LP.addContinuousVar("z", 0, 100);
  LP.addConstraint({{X, 1}, {Y, 1}, {Z, 1}}, RowSense::EQ, 7);
  LP.addConstraint({{X, 1}, {Y, -1}}, RowSense::EQ, 3);
  LP.addConstraint({{Z, 2}}, RowSense::EQ, 4);
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[X], 4.0, 1e-6);
  EXPECT_NEAR(R.X[Y], 1.0, 1e-6);
  EXPECT_NEAR(R.X[Z], 2.0, 1e-6);
}

TEST(Simplex, IterationLimitPath) {
  // A phase-1-requiring system given a 1-iteration budget must come
  // back with IterLimit rather than a wrong answer.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 100);
  int Y = LP.addContinuousVar("y", 0, 100);
  LP.addConstraint({{X, 1}, {Y, 2}}, RowSense::GE, 10);
  LP.addConstraint({{X, 3}, {Y, 1}}, RowSense::GE, 12);
  LP.setObjective({{X, 1}, {Y, 1}});
  LpResult R = solveLpRelaxation(LP, /*MaxIterations=*/1);
  EXPECT_EQ(R.Status, LpStatus::IterLimit);
  EXPECT_LE(R.Iterations, 1);
}

TEST(Simplex, ReportsPivotAndIterationCounters) {
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 10);
  int Y = LP.addContinuousVar("y", 0, 10);
  LP.addConstraint({{X, 1}, {Y, 2}}, RowSense::LE, 4);
  LP.addConstraint({{X, 3}, {Y, 1}}, RowSense::LE, 6);
  LP.setObjective({{X, -1}, {Y, -1}});
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_GE(R.Pivots, 1);
  EXPECT_GE(R.Iterations, R.Pivots); // Bound flips never pivot.
}

TEST(Simplex, DegeneratePivotsWithDuplicateTerms) {
  // Redundant rows through the optimum plus duplicate terms per row:
  // exercises the sparse-column merge and the stall/Bland guard.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 8);
  int Y = LP.addContinuousVar("y", 0, 8);
  for (int I = 1; I <= 5; ++I)
    LP.addConstraint({{X, double(I)}, {X, double(I)}, {Y, 2.0}},
                     RowSense::LE, 16.0 * I);
  LP.addConstraint({{X, 1}, {Y, 1}}, RowSense::LE, 8);
  LP.setObjective({{X, -2}, {Y, -1}});
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -16.0, 1e-6); // x = 8, y = 0.
}

TEST(Simplex, BealeCyclingExampleTerminates) {
  // Beale's classic cycling example: under naive Dantzig pricing with
  // fixed tie-breaks the tableau method loops forever at the origin.
  // The stall guard must kick the solve to Bland's rule and terminate
  // at the true optimum -0.05 (x1 = 1/25, x3 = 1).
  LinearProgram LP;
  int X1 = LP.addContinuousVar("x1", 0, LinearProgram::Infinity);
  int X2 = LP.addContinuousVar("x2", 0, LinearProgram::Infinity);
  int X3 = LP.addContinuousVar("x3", 0, LinearProgram::Infinity);
  int X4 = LP.addContinuousVar("x4", 0, LinearProgram::Infinity);
  LP.addConstraint({{X1, 0.25}, {X2, -60}, {X3, -0.04}, {X4, 9}},
                   RowSense::LE, 0);
  LP.addConstraint({{X1, 0.5}, {X2, -90}, {X3, -0.02}, {X4, 3}},
                   RowSense::LE, 0);
  LP.addConstraint({{X3, 1}}, RowSense::LE, 1);
  LP.setObjective({{X1, -0.75}, {X2, 150}, {X3, -0.02}, {X4, 6}});
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -0.05, 1e-6);
  EXPECT_NEAR(R.X[X1], 0.04, 1e-6);
  EXPECT_NEAR(R.X[X3], 1.0, 1e-6);
}

TEST(Simplex, LongPivotChainForcesRefactorization) {
  // x_i >= x_{i-1} + 1 down a 100-link chain: minimizing the last
  // variable takes a pivot per link, far past the eta-update cap, so
  // the factorization must be rebuilt mid-solve at least once (the
  // initial factorization is the first count).
  LinearProgram LP;
  const int N = 100;
  std::vector<int> X(N);
  for (int I = 0; I < N; ++I)
    X[I] = LP.addContinuousVar("x" + std::to_string(I), 0,
                               LinearProgram::Infinity);
  LP.addConstraint({{X[0], 1}}, RowSense::GE, 1);
  for (int I = 1; I < N; ++I)
    LP.addConstraint({{X[I], 1}, {X[I - 1], -1}}, RowSense::GE, 1);
  LP.setObjective({{X[N - 1], 1}});
  LpResult R = solveLpRelaxation(LP);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, double(N), 1e-5);
  EXPECT_GT(R.Pivots, 64); // Past the update cap by construction.
  EXPECT_GE(R.Refactorizations, 2);
  EXPECT_GT(R.EtaUpdates, 0);
}

TEST(Simplex, WarmStartAfterBoundChangeMatchesCold) {
  // Solve, tighten a bound so the old optimum is cut off, then re-solve
  // from the exported basis: the dual repair must land on the same
  // optimum a cold solve finds, without starting from scratch.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 10);
  int Y = LP.addContinuousVar("y", 0, 10);
  LP.addConstraint({{X, 1}, {Y, 2}}, RowSense::LE, 4);
  LP.addConstraint({{X, 3}, {Y, 1}}, RowSense::LE, 6);
  LP.setObjective({{X, -1}, {Y, -1}});
  LpResult First = solveLpRelaxation(LP);
  ASSERT_EQ(First.Status, LpStatus::Optimal);
  ASSERT_FALSE(First.Basis.empty());
  EXPECT_NEAR(First.X[X], 1.6, 1e-6); // Optimum about to be cut off.

  LP.setBounds(X, 0, 1); // Branch-style tightening.
  LpResult Warm = solveLpRelaxation(LP, 50000, 1e30, &First.Basis);
  LpResult Cold = solveLpRelaxation(LP);
  ASSERT_EQ(Warm.Status, LpStatus::Optimal);
  ASSERT_EQ(Cold.Status, LpStatus::Optimal);
  EXPECT_NE(Warm.StartKind, LpResult::Start::Cold);
  EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-9);
  EXPECT_NEAR(Warm.X[X], 1.0, 1e-6);
  EXPECT_NEAR(Warm.X[Y], 1.5, 1e-6);
}

TEST(Simplex, WarmStartStillFeasibleSkipsRepair) {
  // A bound change that leaves the old optimum feasible: the warm solve
  // must recognize primal feasibility and go straight to phase 2.
  LinearProgram LP;
  int X = LP.addContinuousVar("x", 0, 10);
  int Y = LP.addContinuousVar("y", 0, 10);
  LP.addConstraint({{X, 1}, {Y, 2}}, RowSense::LE, 4);
  LP.addConstraint({{X, 3}, {Y, 1}}, RowSense::LE, 6);
  LP.setObjective({{X, -1}, {Y, -1}});
  LpResult First = solveLpRelaxation(LP);
  ASSERT_EQ(First.Status, LpStatus::Optimal);

  LP.setBounds(X, 0, 5); // Still contains x = 1.6.
  LpResult Warm = solveLpRelaxation(LP, 50000, 1e30, &First.Basis);
  ASSERT_EQ(Warm.Status, LpStatus::Optimal);
  EXPECT_EQ(Warm.StartKind, LpResult::Start::Warm);
  EXPECT_NEAR(Warm.Objective, First.Objective, 1e-9);
}

TEST(Milp, BinaryKnapsack) {
  // max 10a + 6b + 4c s.t. a + b + c <= 2 (binary): pick a and b.
  LinearProgram LP;
  int A = LP.addBinaryVar("a");
  int B = LP.addBinaryVar("b");
  int C = LP.addBinaryVar("c");
  LP.addConstraint({{A, 1}, {B, 1}, {C, 1}}, RowSense::LE, 2);
  LP.setObjective({{A, -10}, {B, -6}, {C, -4}});
  MilpOptions MO;
  MO.StopAtFirstFeasible = false;
  MilpResult R = solveMilp(LP, MO);
  ASSERT_TRUE(R.hasSolution());
  EXPECT_EQ(R.Outcome, MilpResult::Status::Optimal);
  EXPECT_NEAR(R.Objective, -16.0, 1e-6);
  EXPECT_NEAR(R.X[A], 1.0, 1e-6);
  EXPECT_NEAR(R.X[B], 1.0, 1e-6);
  EXPECT_NEAR(R.X[C], 0.0, 1e-6);
}

TEST(Milp, IntegerRounding) {
  // min -x s.t. 2x <= 7, x integer: x = 3, not 3.5.
  LinearProgram LP;
  int X = LP.addIntVar("x", 0, 100);
  LP.addConstraint({{X, 2}}, RowSense::LE, 7);
  LP.setObjective({{X, -1}});
  MilpOptions MO;
  MO.StopAtFirstFeasible = false;
  MilpResult R = solveMilp(LP, MO);
  ASSERT_TRUE(R.hasSolution());
  EXPECT_NEAR(R.X[X], 3.0, 1e-6);
}

TEST(Milp, ProvenInfeasible) {
  // a + b = 1 and a + b = 2 cannot both hold.
  LinearProgram LP;
  int A = LP.addBinaryVar("a");
  int B = LP.addBinaryVar("b");
  LP.addConstraint({{A, 1}, {B, 1}}, RowSense::EQ, 1);
  LP.addConstraint({{A, 1}, {B, 1}}, RowSense::EQ, 2);
  MilpResult R = solveMilp(LP);
  EXPECT_EQ(R.Outcome, MilpResult::Status::Infeasible);
  EXPECT_FALSE(R.hasSolution());
}

TEST(Milp, FeasibilityProblemStopsAtFirst) {
  // Pure feasibility: any assignment of 3 items to 2 bins with capacity.
  LinearProgram LP;
  std::vector<std::vector<int>> W(3, std::vector<int>(2));
  for (int I = 0; I < 3; ++I) {
    for (int P = 0; P < 2; ++P)
      W[I][P] = LP.addBinaryVar("w" + std::to_string(I) +
                                std::to_string(P));
    LP.addConstraint({{W[I][0], 1}, {W[I][1], 1}}, RowSense::EQ, 1);
  }
  for (int P = 0; P < 2; ++P)
    LP.addConstraint({{W[0][P], 5}, {W[1][P], 4}, {W[2][P], 3}},
                     RowSense::LE, 8);
  MilpResult R = solveMilp(LP);
  ASSERT_TRUE(R.hasSolution());
  EXPECT_TRUE(LP.isFeasible(R.X));
}

TEST(Milp, IncumbentShortCircuits) {
  LinearProgram LP;
  int A = LP.addBinaryVar("a");
  int B = LP.addBinaryVar("b");
  LP.addConstraint({{A, 1}, {B, 1}}, RowSense::GE, 1);
  std::vector<double> Incumbent = {1.0, 0.0};
  MilpResult R = solveMilp(LP, MilpOptions(), Incumbent);
  ASSERT_TRUE(R.hasSolution());
  EXPECT_EQ(R.NodesExplored, 0);
  EXPECT_EQ(R.X, Incumbent);
}

TEST(Milp, TimeBudgetRespected) {
  // A hard-ish random-looking subset-sum; the budget must bound time.
  LinearProgram LP;
  std::vector<LinTerm> Row;
  for (int I = 0; I < 24; ++I) {
    int V = LP.addBinaryVar("x" + std::to_string(I));
    Row.push_back({V, double(100 + 17 * I % 97)});
  }
  LP.addConstraint(Row, RowSense::EQ, 1111.5); // Unsatisfiable (half).
  MilpOptions MO;
  MO.TimeBudgetSeconds = 0.2;
  MilpResult R = solveMilp(LP, MO);
  EXPECT_LT(R.Seconds, 5.0);
  EXPECT_FALSE(R.hasSolution());
}

namespace {

/// A 0-1 optimization model with a genuine search tree: weighted set
/// packing over overlapping triples.
LinearProgram makePackingMilp(int Items) {
  LinearProgram LP;
  std::vector<int> Vars(Items);
  std::vector<LinTerm> Obj;
  for (int I = 0; I < Items; ++I) {
    Vars[I] = LP.addBinaryVar("x" + std::to_string(I));
    Obj.push_back({Vars[I], -double(11 + (I * 7) % 13)});
  }
  for (int I = 0; I + 2 < Items; ++I)
    LP.addConstraint(
        {{Vars[I], 1}, {Vars[I + 1], 1}, {Vars[I + 2], 1}}, RowSense::LE,
        2);
  LP.setObjective(std::move(Obj));
  return LP;
}

/// The packing model plus a knapsack budget row: the relaxation's
/// optimum is fractional, so the branch & bound genuinely branches.
LinearProgram makeBranchyMilp(int Items) {
  LinearProgram LP = makePackingMilp(Items);
  std::vector<LinTerm> Budget;
  for (int I = 0; I < Items; ++I)
    Budget.push_back({I, double(5 + (I * 13) % 23)});
  LP.addConstraint(Budget, RowSense::LE, 6.0 * Items);
  return LP;
}

} // namespace

TEST(MilpParallel, MatchesSerialObjective) {
  MilpOptions Serial;
  Serial.StopAtFirstFeasible = false;
  Serial.NumWorkers = 1;
  MilpResult S = solveMilp(makePackingMilp(16), Serial);
  ASSERT_TRUE(S.hasSolution());
  EXPECT_EQ(S.Outcome, MilpResult::Status::Optimal);

  for (int Workers : {2, 4}) {
    MilpOptions Par = Serial;
    Par.NumWorkers = Workers;
    MilpResult P = solveMilp(makePackingMilp(16), Par);
    ASSERT_TRUE(P.hasSolution());
    EXPECT_EQ(P.Outcome, MilpResult::Status::Optimal);
    EXPECT_NEAR(P.Objective, S.Objective, 1e-9);
    EXPECT_EQ(P.WorkersUsed, Workers);
  }
}

TEST(MilpParallel, RepeatedRunsAreDeterministic) {
  MilpOptions MO;
  MO.StopAtFirstFeasible = false;
  MO.NumWorkers = 4;
  MilpResult First = solveMilp(makePackingMilp(14), MO);
  ASSERT_TRUE(First.hasSolution());
  for (int Run = 0; Run < 4; ++Run) {
    MilpResult R = solveMilp(makePackingMilp(14), MO);
    ASSERT_TRUE(R.hasSolution());
    EXPECT_NEAR(R.Objective, First.Objective, 1e-9);
  }
}

TEST(MilpParallel, FeasibilityModelPrunedByFirstIncumbent) {
  // Pure feasibility (empty objective): once any incumbent exists every
  // remaining node is pruned, even with StopAtFirstFeasible off.
  LinearProgram LP;
  std::vector<int> Vars;
  for (int I = 0; I < 10; ++I)
    Vars.push_back(LP.addBinaryVar("b" + std::to_string(I)));
  std::vector<LinTerm> Row;
  for (int V : Vars)
    Row.push_back({V, 1.0});
  LP.addConstraint(Row, RowSense::GE, 5);
  MilpOptions MO;
  MO.StopAtFirstFeasible = false;
  MilpResult R = solveMilp(LP, MO);
  ASSERT_TRUE(R.hasSolution());
  EXPECT_EQ(R.Outcome, MilpResult::Status::Optimal);
  // Without incumbent pruning this feasibility tree has hundreds of
  // nodes; first-found pruning collapses it.
  EXPECT_LT(R.NodesExplored, 64);
}

TEST(MilpParallel, BoundPruneToleranceIsConfigurable) {
  LinearProgram LP = makePackingMilp(12);
  MilpOptions MO;
  MO.StopAtFirstFeasible = false;
  MO.BoundPruneTol = 1e-3; // Coarser pruning must not change the optimum.
  MilpResult R = solveMilp(LP, MO);
  MilpOptions Tight = MO;
  Tight.BoundPruneTol = 1e-12;
  MilpResult T = solveMilp(makePackingMilp(12), Tight);
  ASSERT_TRUE(R.hasSolution());
  ASSERT_TRUE(T.hasSolution());
  EXPECT_NEAR(R.Objective, T.Objective, 1e-6);
}

TEST(MilpParallel, SolverTelemetryIsPopulated) {
  MilpOptions MO;
  MO.StopAtFirstFeasible = false;
  MilpResult R = solveMilp(makeBranchyMilp(14), MO);
  ASSERT_TRUE(R.hasSolution());
  EXPECT_GT(R.NodesExplored, 1); // Fractional relaxation: it branches.
  EXPECT_GE(R.LpSolves, R.NodesExplored / 2); // Most nodes solve an LP.
  EXPECT_GE(R.SimplexIterations, R.Pivots);
  EXPECT_GT(R.BusySeconds, 0.0);
  EXPECT_EQ(R.WorkersUsed, 1);
  // Per-worker drain-loop spans bound busy time, and every non-root
  // node carries its parent's basis, so most node LPs warm-start.
  EXPECT_GE(R.WorkerSeconds, R.BusySeconds);
  EXPECT_EQ(R.Steals, 0); // One worker has nobody to steal from.
  EXPECT_GT(R.WarmLpStarts, 0);
}

TEST(MilpParallel, RootWarmBasisIsAccepted) {
  // Seed the root with the basis of its own relaxation (the II search
  // seeds candidates this way): the root LP must warm-start too.
  LinearProgram LP = makeBranchyMilp(14);
  LpResult Seed = solveLpRelaxation(LP);
  ASSERT_EQ(Seed.Status, LpStatus::Optimal);
  MilpOptions Cold;
  Cold.StopAtFirstFeasible = false;
  MilpOptions WarmOpt = Cold;
  WarmOpt.WarmBasis = Seed.Basis;
  MilpResult Warm = solveMilp(makeBranchyMilp(14), WarmOpt);
  MilpResult Bare = solveMilp(makeBranchyMilp(14), Cold);
  ASSERT_TRUE(Warm.hasSolution());
  ASSERT_TRUE(Bare.hasSolution());
  EXPECT_NEAR(Warm.Objective, Bare.Objective, 1e-9);
  // The warm run's root LP resumes from the seed basis; the bare run's
  // root is the only cold node either way.
  EXPECT_GT(Warm.WarmLpStarts, 0);
  EXPECT_GE(Warm.WarmLpStarts, Bare.WarmLpStarts);
}

TEST(LinearProgram, FeasibilityChecker) {
  LinearProgram LP;
  int X = LP.addIntVar("x", 0, 5);
  int Y = LP.addContinuousVar("y", 0, 5);
  LP.addConstraint({{X, 1}, {Y, 1}}, RowSense::LE, 6);
  EXPECT_TRUE(LP.isFeasible({2.0, 3.5}));
  EXPECT_FALSE(LP.isFeasible({2.5, 3.0})); // x not integral.
  EXPECT_FALSE(LP.isFeasible({5.0, 2.0})); // Row violated.
  EXPECT_FALSE(LP.isFeasible({6.0, 0.0})); // Bound violated.
}

//===----------------------------------------------------------------------===//
// Hybrid (CPU+GPU) SWP formulation
//===----------------------------------------------------------------------===//

#include "core/IlpFormulation.h"

#include "TestGraphs.h"

namespace {

using namespace sgpu;
using namespace sgpu::testing;

/// A three-filter chain (S2 -> S3 -> S5, all rate 1->1) with
/// hand-written per-class delays: one instance per node, so every
/// ILP row is small enough to reason about by hand.
struct HybridToy {
  StreamGraph G;
  std::optional<SteadyState> SS;
  ExecutionConfig Config;
  GpuSteadyState GSS;
  MachineModel Machine;

  int id(const std::string &Name) const {
    for (const GraphNode &N : G.nodes())
      if (N.Name == Name)
        return N.Id;
    ADD_FAILURE() << "no node named " << Name;
    return -1;
  }
};

HybridToy makeHybridToy() {
  HybridToy T;
  T.G = makeScalePipeline();
  T.SS = SteadyState::compute(T.G);
  EXPECT_TRUE(T.SS.has_value());
  size_t N = static_cast<size_t>(T.G.numNodes());
  T.Config.Threads.assign(N, 1);
  T.GSS = computeGpuSteadyState(T.SS->repetitions(), T.Config.Threads);
  // S3 is 10x too slow for the GPU but cheap on the host; the other two
  // filters prefer the GPU.
  T.Config.Delay.assign(N, 10.0);
  T.Config.CpuDelay.assign(N, 50.0);
  T.Config.Delay[static_cast<size_t>(T.id("S3#1"))] = 100.0;
  T.Config.CpuDelay[static_cast<size_t>(T.id("S3#1"))] = 20.0;
  // Two SMs (16 KiB shared each) plus one CPU core with a 2 MiB cache.
  T.Machine.Classes.push_back({ProcClassKind::GpuSm, 2, 16384});
  T.Machine.Classes.push_back({ProcClassKind::CpuCore, 1, 2 << 20});
  T.Machine.MaxCoarsen = 8;
  return T;
}

} // namespace

TEST(HybridIlp, HandComputedOptimalAssignment) {
  HybridToy T = makeHybridToy();
  // At II = 60 the GPU cannot run S3 at all (delay 100 > 60, rows 2/4'),
  // and the core cannot take a second filter on top of it (20 + 50 > 60,
  // row 2'). The only feasible class split is S3 on the host, S2/S5 on
  // SMs — any feasible MILP point must reproduce it.
  auto M = buildSwpIlp(T.G, *T.SS, T.Config, T.GSS,
                       /*Pmax=*/T.Machine.totalProcs(), /*T=*/60.0,
                       /*MaxStages=*/8, /*StrictIntraSm=*/false,
                       &T.Machine);
  ASSERT_TRUE(M.has_value());
  MilpResult MR = solveMilp(M->LP);
  ASSERT_TRUE(MR.hasSolution());
  SwpSchedule S = M->decode(MR.X);
  int NumGpuSms = T.Machine.numGpuSms();
  for (const ScheduledInstance &SI : S.Instances) {
    if (SI.Node == T.id("S3#1"))
      EXPECT_GE(SI.Sm, NumGpuSms) << "S3 must land on the CPU core";
    else
      EXPECT_LT(SI.Sm, NumGpuSms)
          << T.G.node(SI.Node).Name << " must stay on an SM";
  }
}

TEST(HybridIlp, CpuCoreExpandsFeasibility) {
  HybridToy T = makeHybridToy();
  // GPU-only at the same II is infeasible: S3's 100-cycle delay alone
  // exceeds T = 60 on every SM.
  EXPECT_FALSE(buildSwpIlp(T.G, *T.SS, T.Config, T.GSS, /*Pmax=*/2,
                           /*T=*/60.0, 8)
                   .has_value());
  EXPECT_TRUE(buildSwpIlp(T.G, *T.SS, T.Config, T.GSS,
                          T.Machine.totalProcs(), /*T=*/60.0, 8,
                          /*StrictIntraSm=*/false, &T.Machine)
                  .has_value());
}

TEST(HybridIlp, ClassCapacityInfeasibilityDetected) {
  HybridToy T = makeHybridToy();
  // One coarsening unit's working set here is 8 bytes (2 tokens x 4
  // bytes, one thread). A 4-byte CPU cache cannot hold even one unit:
  // the coarsening bound is undefined and the whole model infeasible.
  T.Machine.Classes[1].MemBytes = 4;
  EXPECT_FALSE(computeClassCoarsening(T.G, T.Config, T.Machine)
                   .has_value());
  EXPECT_FALSE(buildSwpIlp(T.G, *T.SS, T.Config, T.GSS,
                           T.Machine.totalProcs(), /*T=*/1e9, 8,
                           /*StrictIntraSm=*/false, &T.Machine)
                   .has_value());
}

TEST(HybridIlp, CoarseningVariableObeysMemoryBound) {
  HybridToy T = makeHybridToy();
  // ws = 8 bytes: a 64-byte SM budget caps the class at 8 units (also
  // the MaxCoarsen cap), a 24-byte cache at 3.
  T.Machine.Classes[0].MemBytes = 64;
  T.Machine.Classes[1].MemBytes = 24;
  auto Bounds = computeClassCoarsening(T.G, T.Config, T.Machine);
  ASSERT_TRUE(Bounds.has_value());
  ASSERT_EQ(Bounds->size(), 2u);
  EXPECT_EQ((*Bounds)[0], 8);
  EXPECT_EQ((*Bounds)[1], 3);

  auto M = buildSwpIlp(T.G, *T.SS, T.Config, T.GSS,
                       T.Machine.totalProcs(), /*T=*/400.0, 8,
                       /*StrictIntraSm=*/false, &T.Machine);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->CoarsenBound, *Bounds);
  MilpOptions MO;
  MO.StopAtFirstFeasible = false; // Solve to proven optimality.
  MilpResult MR = solveMilp(M->LP, MO);
  ASSERT_TRUE(MR.hasSolution());
  SwpSchedule S = M->decode(MR.X);
  ASSERT_EQ(S.ClassCoarsening.size(), 2u);
  for (size_t C = 0; C < 2; ++C) {
    EXPECT_GE(S.ClassCoarsening[C], 1);
    EXPECT_LE(S.ClassCoarsening[C], (*Bounds)[C]);
  }
  // The objective's -1e-3 coarsening reward drives every class to its
  // memory bound at optimality.
  EXPECT_EQ(S.ClassCoarsening[0], 8);
  EXPECT_EQ(S.ClassCoarsening[1], 3);
}
