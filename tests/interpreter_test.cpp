//===- tests/interpreter_test.cpp - AST & graph interpreter tests -----------===//

#include "ir/Interpreter.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

ChannelBuffer makeIntChannel(const std::vector<int64_t> &Vals) {
  ChannelBuffer C(TokenType::Int);
  for (int64_t V : Vals)
    C.push(Scalar::makeInt(V));
  return C;
}

} // namespace

TEST(FireFilter, ScaleInt) {
  FilterPtr F = makeScaleInt("S", 7);
  ChannelBuffer In = makeIntChannel({6});
  ChannelBuffer Out(TokenType::Int);
  fireFilter(*F, &In, &Out);
  ASSERT_EQ(Out.size(), 1);
  EXPECT_EQ(Out.pop().asInt(), 42);
  EXPECT_TRUE(In.empty());
}

TEST(FireFilter, MultiRatePushPop) {
  FilterPtr A = makeFig4A();
  ChannelBuffer In = makeIntChannel({5});
  ChannelBuffer Out(TokenType::Int);
  fireFilter(*A, &In, &Out);
  ASSERT_EQ(Out.size(), 2);
  EXPECT_EQ(Out.pop().asInt(), 5);
  EXPECT_EQ(Out.pop().asInt(), 50);
}

TEST(FireFilter, PeekDoesNotConsume) {
  FilterPtr F = makeMovingSum("MS", 3);
  ChannelBuffer In(TokenType::Float);
  for (double V : {1.0, 2.0, 3.0, 4.0})
    In.push(Scalar::makeFloat(V));
  ChannelBuffer Out(TokenType::Float);
  fireFilter(*F, &In, &Out);
  EXPECT_EQ(In.size(), 3); // One pop, peeks left the rest.
  EXPECT_DOUBLE_EQ(Out.pop().asFloat(), 6.0);
  fireFilter(*F, &In, &Out);
  EXPECT_DOUBLE_EQ(Out.pop().asFloat(), 9.0);
}

TEST(FireFilter, StatsCollection) {
  FilterPtr F = makeMovingSum("MS", 4);
  ChannelBuffer In(TokenType::Float);
  for (int I = 0; I < 5; ++I)
    In.push(Scalar::makeFloat(1.0));
  ChannelBuffer Out(TokenType::Float);
  FiringStats S;
  fireFilter(*F, &In, &Out, &S);
  EXPECT_EQ(S.Pops, 1);
  EXPECT_EQ(S.Peeks, 4);
  EXPECT_EQ(S.Pushes, 1);
  EXPECT_EQ(S.MaxPeekDepth, 3);
  EXPECT_GE(S.FloatOps, 4);
}

TEST(FireFilter, IntWrapsTo32Bits) {
  FilterBuilder B("Wrap", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  B.push(B.mul(B.pop(), B.litI(1 << 30)));
  FilterPtr F = B.build();
  ChannelBuffer In = makeIntChannel({8}); // 8 << 30 overflows int32.
  ChannelBuffer Out(TokenType::Int);
  fireFilter(*F, &In, &Out);
  EXPECT_EQ(Out.pop().asInt(),
            static_cast<int32_t>(int64_t(8) * (int64_t(1) << 30)));
}

TEST(FireFilter, BitOpsAndShifts) {
  FilterBuilder B("Bits", TokenType::Int, TokenType::Int);
  B.setRates(1, 4);
  const VarDecl *V = B.declVar("v", B.pop());
  B.push(B.bitAnd(B.ref(V), B.litI(0xF)));
  B.push(B.bitOr(B.ref(V), B.litI(0x100)));
  B.push(B.bitXor(B.ref(V), B.litI(0xFF)));
  B.push(B.shr(B.shl(B.ref(V), B.litI(4)), B.litI(2)));
  FilterPtr F = B.build();
  ChannelBuffer In = makeIntChannel({0xAB});
  ChannelBuffer Out(TokenType::Int);
  fireFilter(*F, &In, &Out);
  EXPECT_EQ(Out.pop().asInt(), 0xB);
  EXPECT_EQ(Out.pop().asInt(), 0x1AB);
  EXPECT_EQ(Out.pop().asInt(), 0xAB ^ 0xFF);
  EXPECT_EQ(Out.pop().asInt(), (0xAB << 4) >> 2);
}

TEST(FireFilter, ControlFlow) {
  FilterBuilder B("Clamp", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const VarDecl *V = B.declVar("v", B.pop());
  B.beginIf(B.gt(B.ref(V), B.litI(10)));
  B.assign(V, B.litI(10));
  B.beginElse();
  B.beginIf(B.lt(B.ref(V), B.litI(0)));
  B.assign(V, B.litI(0));
  B.endIf();
  B.endIf();
  B.push(B.ref(V));
  FilterPtr F = B.build();

  auto RunOne = [&](int64_t X) {
    ChannelBuffer In = makeIntChannel({X});
    ChannelBuffer Out(TokenType::Int);
    fireFilter(*F, &In, &Out);
    return Out.pop().asInt();
  };
  EXPECT_EQ(RunOne(15), 10);
  EXPECT_EQ(RunOne(-3), 0);
  EXPECT_EQ(RunOne(7), 7);
}

TEST(SplitterJoiner, Duplicate) {
  GraphNode N;
  N.Kind = NodeKind::Splitter;
  N.SplitKind = SplitterKind::Duplicate;
  N.Weights = {1, 1, 1};
  ChannelBuffer In = makeIntChannel({9});
  ChannelBuffer O1(TokenType::Int), O2(TokenType::Int), O3(TokenType::Int);
  fireSplitterJoiner(N, {&In}, {&O1, &O2, &O3});
  EXPECT_EQ(O1.pop().asInt(), 9);
  EXPECT_EQ(O2.pop().asInt(), 9);
  EXPECT_EQ(O3.pop().asInt(), 9);
}

TEST(SplitterJoiner, RoundRobinSplit) {
  GraphNode N;
  N.Kind = NodeKind::Splitter;
  N.SplitKind = SplitterKind::RoundRobin;
  N.Weights = {2, 1};
  ChannelBuffer In = makeIntChannel({1, 2, 3});
  ChannelBuffer O1(TokenType::Int), O2(TokenType::Int);
  fireSplitterJoiner(N, {&In}, {&O1, &O2});
  ASSERT_EQ(O1.size(), 2);
  ASSERT_EQ(O2.size(), 1);
  EXPECT_EQ(O1.pop().asInt(), 1);
  EXPECT_EQ(O1.pop().asInt(), 2);
  EXPECT_EQ(O2.pop().asInt(), 3);
}

TEST(SplitterJoiner, RoundRobinJoin) {
  GraphNode N;
  N.Kind = NodeKind::Joiner;
  N.Weights = {1, 2};
  ChannelBuffer I1 = makeIntChannel({10});
  ChannelBuffer I2 = makeIntChannel({20, 30});
  ChannelBuffer Out(TokenType::Int);
  fireSplitterJoiner(N, {&I1, &I2}, {&Out});
  EXPECT_EQ(Out.pop().asInt(), 10);
  EXPECT_EQ(Out.pop().asInt(), 20);
  EXPECT_EQ(Out.pop().asInt(), 30);
}

TEST(GraphInterpreter, PipelineComputesProduct) {
  StreamGraph G = makeScalePipeline();
  GraphInterpreter GI(G);
  GI.feedInput({Scalar::makeInt(1), Scalar::makeInt(2), Scalar::makeInt(3)});
  ASSERT_TRUE(GI.runSteadyState({1, 1, 1}, 3));
  ASSERT_EQ(GI.output().size(), 3u);
  EXPECT_EQ(GI.output()[0].asInt(), 30);
  EXPECT_EQ(GI.output()[1].asInt(), 60);
  EXPECT_EQ(GI.output()[2].asInt(), 90);
}

TEST(GraphInterpreter, MultiRateSteadyState) {
  StreamGraph G = makeFig4Graph();
  GraphInterpreter GI(G);
  // One steady iteration: A fires 3 times (pops 3), B fires 2.
  for (int I = 1; I <= 3; ++I)
    GI.feedInput({Scalar::makeInt(I)});
  ASSERT_TRUE(GI.runSteadyState({3, 2}, 1));
  // A emits 1,10,2,20,3,30; B sums triples: 13, 53.
  ASSERT_EQ(GI.output().size(), 2u);
  EXPECT_EQ(GI.output()[0].asInt(), 13);
  EXPECT_EQ(GI.output()[1].asInt(), 53);
}

TEST(GraphInterpreter, FiringRuleBlocksWithoutInput) {
  StreamGraph G = makeScalePipeline();
  GraphInterpreter GI(G);
  EXPECT_EQ(GI.fireNode(0, 1), 0); // No input fed.
}

TEST(GraphInterpreter, DupSplitJoinDataFlow) {
  StreamGraph G = makeDupSplitGraph();
  std::optional<std::vector<int64_t>> Reps;
  {
    // All nodes fire once per iteration except the joiner output stage.
    Reps = std::vector<int64_t>(G.numNodes(), 1);
    // The round-robin joiner with weights {1,1} pushes 2 per firing, and
    // the Out filter pops 1, so Out fires twice.
    for (const GraphNode &N : G.nodes())
      if (N.isFilter() && N.TheFilter->name() == "Out")
        (*Reps)[N.Id] = 2;
  }
  GraphInterpreter GI(G);
  GI.feedInput({Scalar::makeInt(5)});
  ASSERT_TRUE(GI.runSteadyState(*Reps, 1));
  ASSERT_EQ(GI.output().size(), 2u);
  EXPECT_EQ(GI.output()[0].asInt(), 10);
  EXPECT_EQ(GI.output()[1].asInt(), 15);
}

TEST(GraphInterpreter, ChannelOccupancyTracked) {
  StreamGraph G = makeFig4Graph();
  GraphInterpreter GI(G);
  for (int I = 0; I < 3; ++I)
    GI.feedInput({Scalar::makeInt(I)});
  ASSERT_TRUE(GI.runSteadyState({3, 2}, 1));
  EXPECT_EQ(GI.channel(0).maxOccupancy(), 6);
  EXPECT_EQ(GI.channel(0).totalPushed(), 6);
  EXPECT_EQ(GI.channel(0).totalPopped(), 6);
}
