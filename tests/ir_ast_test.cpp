//===- tests/ir_ast_test.cpp - AST, builder, analyzer tests -----------------===//

#include "ir/Analyzer.h"
#include "ir/AstPrinter.h"
#include "ir/FilterBuilder.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

TEST(FilterBuilder, RatesAndTypes) {
  FilterPtr F = makeScaleInt("S", 3);
  EXPECT_EQ(F->popRate(), 1);
  EXPECT_EQ(F->pushRate(), 1);
  EXPECT_EQ(F->peekRate(), 1);
  EXPECT_FALSE(F->isPeeking());
  EXPECT_EQ(F->inputType(), TokenType::Int);
  EXPECT_EQ(F->outputType(), TokenType::Int);
}

TEST(FilterBuilder, PeekingFilter) {
  FilterPtr F = makeMovingSum("MS", 8);
  EXPECT_EQ(F->peekRate(), 8);
  EXPECT_TRUE(F->isPeeking());
}

TEST(FilterBuilder, FieldsHoldConstants) {
  FilterBuilder B("F", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  const VarDecl *K = B.fieldScalarF("k", 2.5);
  const VarDecl *Tab = B.fieldArrayI("tab", {1, 2, 3});
  B.push(B.mul(B.pop(), B.ref(K)));
  FilterPtr F = B.build();
  EXPECT_DOUBLE_EQ(F->fieldValues(K->slot())[0].asFloat(), 2.5);
  ASSERT_EQ(F->fieldValues(Tab->slot()).size(), 3u);
  EXPECT_EQ(F->fieldValues(Tab->slot())[2].asInt(), 3);
  EXPECT_TRUE(K->isField());
  EXPECT_TRUE(Tab->isArray());
}

TEST(FilterBuilder, ImplicitIntToFloatPromotion) {
  FilterBuilder B("F", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  // int literal + float pop must promote to float.
  const Expr *E = B.add(B.litI(1), B.pop());
  EXPECT_EQ(E->type(), TokenType::Float);
  B.push(E);
  FilterPtr F = B.build();
  EXPECT_EQ(F->pushRate(), 1);
}

TEST(FilterBuilder, ComparisonYieldsInt) {
  FilterBuilder B("F", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  const Expr *C = B.lt(B.litF(1.0), B.litF(2.0));
  EXPECT_EQ(C->type(), TokenType::Int);
  B.push(B.select(C, B.litF(1.0), B.litF(0.0)));
  (void)B.build();
}

TEST(Casting, IsaAndDynCast) {
  FilterBuilder B("F", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const Expr *L = B.litI(42);
  EXPECT_TRUE(isa<IntLiteral>(L));
  EXPECT_FALSE(isa<FloatLiteral>(L));
  EXPECT_EQ(cast<IntLiteral>(L)->value(), 42);
  EXPECT_EQ(dyn_cast<FloatLiteral>(L), nullptr);
  EXPECT_NE(dyn_cast<IntLiteral>(L), nullptr);
  B.push(B.pop());
  (void)B.build();
}

TEST(Analyzer, CountsOpsInStraightLine) {
  FilterPtr F = makeScaleInt("S", 3);
  WorkEstimate WE = analyzeFilter(*F);
  EXPECT_EQ(WE.ChannelReads, 1);
  EXPECT_EQ(WE.ChannelWrites, 1);
  EXPECT_EQ(WE.IntOps, 1); // The multiply.
  EXPECT_EQ(WE.FloatOps, 0);
  EXPECT_FALSE(WE.Approximate);
}

TEST(Analyzer, LoopScaling) {
  FilterPtr F = makeMovingSum("MS", 16);
  WorkEstimate WE = analyzeFilter(*F);
  // 16 peeks + 1 pop.
  EXPECT_EQ(WE.ChannelReads, 17);
  EXPECT_EQ(WE.ChannelWrites, 1);
  // 16 adds in the loop body plus loop overhead.
  EXPECT_GE(WE.FloatOps, 16);
  EXPECT_GE(WE.IntOps, 32); // 2 per iteration of loop bookkeeping.
}

TEST(Analyzer, RegistersGrowWithLocals) {
  FilterBuilder B("Many", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  const Expr *V = B.pop();
  std::vector<const VarDecl *> Vars;
  for (int I = 0; I < 20; ++I) {
    Vars.push_back(B.declVar("v" + std::to_string(I), V));
    V = B.ref(Vars.back());
  }
  B.push(V);
  FilterPtr F = B.build();
  WorkEstimate WE = analyzeFilter(*F);
  EXPECT_GE(WE.Registers, 20);
}

TEST(Analyzer, LargeLocalArraysSpill) {
  FilterBuilder B("Arr", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const VarDecl *A = B.declArray("a", TokenType::Int, 64);
  B.assignIndex(A, B.litI(0), B.pop());
  B.push(B.index(A, B.litI(0)));
  FilterPtr F = B.build();
  WorkEstimate WE = analyzeFilter(*F);
  EXPECT_EQ(WE.LocalArrayBytes, 64 * 4);
  EXPECT_GE(WE.LocalArrayAccesses, 2);
}

TEST(Analyzer, StaticRatesMatchDeclared) {
  FilterPtr F = makeFig4A();
  StaticRates R = computeStaticRates(*F);
  ASSERT_TRUE(R.Pops.has_value());
  ASSERT_TRUE(R.Pushes.has_value());
  EXPECT_EQ(*R.Pops, F->popRate());
  EXPECT_EQ(*R.Pushes, F->pushRate());
}

TEST(Analyzer, StaticRatesThroughLoops) {
  FilterPtr F = makeMovingSum("MS", 4);
  StaticRates R = computeStaticRates(*F);
  ASSERT_TRUE(R.Pops.has_value());
  EXPECT_EQ(*R.Pops, 1);
  EXPECT_EQ(*R.Pushes, 1);
}

TEST(Analyzer, BranchDependentRatesDetected) {
  FilterBuilder B("Cond", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const VarDecl *V = B.declVar("v", B.pop());
  B.beginIf(B.gt(B.ref(V), B.litI(0)));
  B.push(B.ref(V));
  B.endIf();
  FilterPtr F = B.build();
  StaticRates R = computeStaticRates(*F);
  EXPECT_FALSE(R.Pushes.has_value());
}

TEST(Analyzer, ConstFolding) {
  FilterBuilder B("CF", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const VarDecl *N = B.fieldScalarI("n", 6);
  const Expr *E = B.mul(B.ref(N), B.litI(7));
  B.push(B.pop());
  FilterPtr F = B.build();
  std::optional<int64_t> V = tryEvalConstInt(*F, E);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 42);
}

TEST(AstPrinter, SymbolicPrimitives) {
  FilterPtr F = makeMovingSum("MS", 4);
  std::string S = printWorkBody(*F, symbolicChannelLowering());
  EXPECT_NE(S.find("peek(i)"), std::string::npos);
  EXPECT_NE(S.find("push(sum)"), std::string::npos);
  EXPECT_NE(S.find("for (int i = 0; i < 4; i += 1)"), std::string::npos);
  EXPECT_NE(S.find("float sum;"), std::string::npos);
}

TEST(AstPrinter, CustomLowering) {
  FilterPtr F = makeScaleInt("S", 3);
  ChannelLowering L;
  L.Pop = [](const std::string &O) { return "IN[" + O + "]"; };
  L.Peek = [](const std::string &D) { return "IN_PEEK[" + D + "]"; };
  L.Push = [](const std::string &O, const std::string &V) {
    return "OUT[" + O + "] = " + V;
  };
  std::string S = printWorkBody(*F, L);
  EXPECT_NE(S.find("IN[__pop_idx++]"), std::string::npos);
  EXPECT_NE(S.find("OUT[__push_idx++] ="), std::string::npos);
}

TEST(AstPrinter, FieldConstants) {
  FilterBuilder B("F", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  B.fieldArrayF("h", {1.0, 2.5});
  B.push(B.pop());
  FilterPtr F = B.build();
  std::string S = printFieldConstants(*F, "pfx_");
  EXPECT_NE(S.find("pfx_h[2] = {1.0f, 2.5f}"), std::string::npos);
}

TEST(AstPrinter, ParenthesizationByPrecedence) {
  FilterBuilder B("P", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const Expr *E = B.mul(B.add(B.litI(1), B.litI(2)), B.litI(3));
  std::string S = printExpr(E, symbolicChannelLowering());
  EXPECT_EQ(S, "(1 + 2) * 3");
  B.push(B.pop());
  (void)B.build();
}
