//===- tests/ir_graph_test.cpp - Flattening and graph tests -----------------===//

#include "ir/StreamGraph.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

TEST(Flatten, PipelineShape) {
  StreamGraph G = makeScalePipeline();
  EXPECT_EQ(G.numNodes(), 3);
  EXPECT_EQ(G.numEdges(), 2);
  EXPECT_EQ(G.entryNode(), 0);
  EXPECT_EQ(G.exitNode(), 2);
  EXPECT_FALSE(G.validate().has_value()) << *G.validate();
}

TEST(Flatten, EdgeRatesFromFilters) {
  StreamGraph G = makeFig4Graph();
  ASSERT_EQ(G.numEdges(), 1);
  const ChannelEdge &E = G.edge(0);
  EXPECT_EQ(E.ProdRate, 2);
  EXPECT_EQ(E.ConsRate, 3);
  EXPECT_EQ(E.PeekRate, 3);
  EXPECT_EQ(E.InitTokens, 0);
}

TEST(Flatten, DuplicateSplitJoin) {
  StreamGraph G = makeDupSplitGraph();
  // __input identity (the splitter cannot read the program input
  // directly) + split + 2 branches + join + out filter.
  EXPECT_EQ(G.numNodes(), 6);
  EXPECT_EQ(G.numEdges(), 6);
  EXPECT_FALSE(G.validate().has_value()) << *G.validate();

  int Splitters = 0, Joiners = 0;
  for (const GraphNode &N : G.nodes()) {
    Splitters += N.isSplitter();
    Joiners += N.isJoiner();
  }
  EXPECT_EQ(Splitters, 1);
  EXPECT_EQ(Joiners, 1);
}

TEST(Flatten, RoundRobinWeights) {
  std::vector<StreamPtr> Branches;
  Branches.push_back(filterStream(makeScaleInt("L", 2)));
  Branches.push_back(filterStream(makeScaleInt("R", 3)));
  StreamGraph G =
      flatten(*roundRobinSplitJoin({4, 2}, std::move(Branches), {1, 1}));
  const GraphNode *Split = nullptr;
  for (const GraphNode &N : G.nodes())
    if (N.isSplitter())
      Split = &N;
  ASSERT_NE(Split, nullptr);
  EXPECT_EQ(Split->totalPopPerFiring(), 6);
  // Output edge 0 carries 4 tokens per splitter firing.
  EXPECT_EQ(G.edge(Split->OutEdges[0]).ProdRate, 4);
  EXPECT_EQ(G.edge(Split->OutEdges[1]).ProdRate, 2);
}

TEST(Flatten, FeedbackLoopHasInitTokens) {
  // Joiner merges input (w=1) with feedback (w=1); body scales by 2;
  // splitter sends 1 out, 1 back through the loop identity.
  StreamPtr Loop = feedbackLoopStream(
      {1, 1}, filterStream(makeScaleInt("Body", 2)), {1, 1},
      filterStream(makeScaleInt("LoopId", 1)), /*InitTokens=*/2);
  StreamGraph G = flatten(*Loop);
  EXPECT_FALSE(G.validate().has_value()) << *G.validate();

  bool FoundInit = false;
  for (const ChannelEdge &E : G.edges())
    if (E.InitTokens == 2)
      FoundInit = true;
  EXPECT_TRUE(FoundInit);
  ASSERT_TRUE(G.topologicalOrder().has_value());
}

TEST(Flatten, FeedbackLoopWithoutTokensDeadlocks) {
  StreamPtr Loop = feedbackLoopStream(
      {1, 1}, filterStream(makeScaleInt("Body", 2)), {1, 1},
      filterStream(makeScaleInt("LoopId", 1)), /*InitTokens=*/0);
  StreamGraph G = flatten(*Loop);
  EXPECT_FALSE(G.topologicalOrder().has_value());
}

TEST(StreamGraph, TopologicalOrderRespectsEdges) {
  StreamGraph G = makeDupSplitGraph();
  std::optional<std::vector<int>> Order = G.topologicalOrder();
  ASSERT_TRUE(Order.has_value());
  std::vector<int> Pos(G.numNodes());
  for (int I = 0; I < G.numNodes(); ++I)
    Pos[(*Order)[I]] = I;
  for (const ChannelEdge &E : G.edges())
    EXPECT_LT(Pos[E.Src], Pos[E.Dst]);
}

TEST(StreamGraph, SourceSinkQueries) {
  StreamGraph G = makeScalePipeline();
  EXPECT_EQ(G.sourceNodes(), std::vector<int>{0});
  EXPECT_EQ(G.sinkNodes(), std::vector<int>{2});
}

TEST(StreamGraph, CountsPeekingFilters) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeMovingSum("MS1", 4)));
  Parts.push_back(filterStream(makeOffsetFloat("Off", 1.0)));
  Parts.push_back(filterStream(makeMovingSum("MS2", 8)));
  StreamGraph G = flatten(*pipelineStream(std::move(Parts)));
  EXPECT_EQ(G.numFilterNodes(), 3);
  EXPECT_EQ(G.numPeekingFilters(), 2);
}

TEST(StreamGraph, DotOutput) {
  StreamGraph G = makeFig4Graph();
  std::string Dot = G.toDot("fig4");
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("2:3"), std::string::npos);
  EXPECT_NE(Dot.find("pop 1 push 2"), std::string::npos);
}

TEST(StreamGraph, PeekRatePropagatesToEdge) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeOffsetFloat("Pre", 0.0)));
  Parts.push_back(filterStream(makeMovingSum("MS", 5)));
  StreamGraph G = flatten(*pipelineStream(std::move(Parts)));
  ASSERT_EQ(G.numEdges(), 1);
  EXPECT_EQ(G.edge(0).PeekRate, 5);
  EXPECT_EQ(G.edge(0).ConsRate, 1);
}
