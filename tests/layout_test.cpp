//===- tests/layout_test.cpp - Buffer layout and coalescing tests -----------===//

#include "layout/AccessAnalyzer.h"
#include "layout/BufferLayout.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

using namespace sgpu;

TEST(BufferLayout, Eq10MatchesPermutation) {
  // shuffledIndex(tid, n, rate) must equal the permutation applied to the
  // natural index (they are the same map stated two ways).
  for (int64_t Rate : {1, 2, 4, 7})
    for (int64_t Tid = 0; Tid < 300; Tid += 37)
      for (int64_t N = 0; N < Rate; ++N)
        EXPECT_EQ(shuffledIndex(Tid, N, Rate),
                  shuffledPosition(naturalIndex(Tid, N, Rate), Rate));
}

TEST(BufferLayout, PaperFigure9FirstBlock) {
  // Figure 9: "the first 128 elements of the buffer contain the first
  // popped elements for each of the 128 threads".
  int64_t Rate = 4;
  for (int64_t Tid = 0; Tid < 128; ++Tid)
    EXPECT_EQ(shuffledIndex(Tid, 0, Rate), Tid);
  // The second pops occupy the next 128 slots.
  for (int64_t Tid = 0; Tid < 128; ++Tid)
    EXPECT_EQ(shuffledIndex(Tid, 1, Rate), 128 + Tid);
}

class ShuffleBijection : public ::testing::TestWithParam<int64_t> {};

TEST_P(ShuffleBijection, IsPermutationOverClusters) {
  int64_t Rate = GetParam();
  int64_t Total = 3 * ThreadClusterSize * Rate; // Three clusters.
  std::set<int64_t> Seen;
  for (int64_t Q = 0; Q < Total; ++Q) {
    int64_t P = shuffledPosition(Q, Rate);
    EXPECT_GE(P, 0);
    EXPECT_LT(P, Total);
    EXPECT_TRUE(Seen.insert(P).second) << "collision at q=" << Q;
    EXPECT_EQ(naturalFromShuffled(P, Rate), Q);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, ShuffleBijection,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

TEST(BufferLayout, ShuffleUnshuffleRoundTrip) {
  int64_t Rate = 4;
  std::vector<int> In(ThreadClusterSize * Rate * 2);
  std::iota(In.begin(), In.end(), 0);
  std::vector<int> Shuffled = shuffleInputBuffer(In, Rate);
  EXPECT_NE(Shuffled, In);
  EXPECT_EQ(unshuffleOutputBuffer(Shuffled, Rate), In);
}

TEST(Coalescing, PerfectPatternIsOneTransaction) {
  std::vector<int64_t> Addrs(16);
  std::iota(Addrs.begin(), Addrs.end(), 64);
  EXPECT_EQ(countHalfWarpTransactions(Addrs), 1);
}

TEST(Coalescing, MisalignedBaseSerializes) {
  std::vector<int64_t> Addrs(16);
  std::iota(Addrs.begin(), Addrs.end(), 3); // Base not 16-aligned.
  EXPECT_EQ(countHalfWarpTransactions(Addrs), 16);
}

TEST(Coalescing, StridedPatternSerializes) {
  std::vector<int64_t> Addrs;
  for (int I = 0; I < 16; ++I)
    Addrs.push_back(I * 4); // The Figure 8 pop-rate-4 pattern.
  EXPECT_EQ(countHalfWarpTransactions(Addrs), 16);
}

TEST(BankConflicts, ConflictFreeUnitStride) {
  std::vector<int64_t> Addrs(16);
  std::iota(Addrs.begin(), Addrs.end(), 0);
  EXPECT_EQ(sharedMemoryConflictDegree(Addrs), 1);
}

TEST(BankConflicts, PowerOfTwoStrideConflicts) {
  std::vector<int64_t> Addrs;
  for (int I = 0; I < 16; ++I)
    Addrs.push_back(I * 4);
  EXPECT_EQ(sharedMemoryConflictDegree(Addrs), 4); // 16/gcd... 4 banks hit.
}

TEST(BankConflicts, BroadcastIsFree) {
  std::vector<int64_t> Addrs(16, 42);
  EXPECT_EQ(sharedMemoryConflictDegree(Addrs), 1);
}

//===----------------------------------------------------------------------===//
// The paper's headline layout property: under the shuffled layout every
// access of every half-warp coalesces, for any pop rate (Section IV-D:
// "the efficiency of the scheme is oblivious to the push and pop rates").
//===----------------------------------------------------------------------===//

struct AccessCase {
  int64_t Threads;
  int64_t Rate;
};

class StridedAccess : public ::testing::TestWithParam<AccessCase> {};

TEST_P(StridedAccess, ShuffledFullyCoalesced) {
  auto [Threads, Rate] = GetParam();
  AccessSummary S = analyzeStridedAccess(LayoutKind::Shuffled, Threads,
                                         Rate, Rate);
  EXPECT_EQ(S.Transactions, S.HalfWarps) << "one transaction per access";
  EXPECT_DOUBLE_EQ(S.transactionsPerAccess(), 1.0 / 16.0);
}

TEST_P(StridedAccess, SequentialSerializesUnlessRate1) {
  auto [Threads, Rate] = GetParam();
  AccessSummary S = analyzeStridedAccess(LayoutKind::Sequential, Threads,
                                         Rate, Rate);
  if (Rate == 1) {
    // Natural FIFO order at rate 1 is already WarpBase + tid.
    EXPECT_DOUBLE_EQ(S.transactionsPerAccess(), 1.0 / 16.0);
  } else {
    // The Figure 8 pathology: every lane in its own transaction.
    EXPECT_DOUBLE_EQ(S.transactionsPerAccess(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StridedAccess,
    ::testing::Values(AccessCase{128, 1}, AccessCase{128, 2},
                      AccessCase{128, 4}, AccessCase{256, 4},
                      AccessCase{384, 3}, AccessCase{512, 8},
                      AccessCase{512, 64}));
