//===- tests/metrics_test.cpp - Metrics registry tests ----------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

using namespace sgpu;

namespace {

/// Each test uses its own registry instance so the process-global one
/// (shared with the instrumented library) stays out of the assertions.
TEST(Metrics, CounterBasics) {
  MetricsRegistry R;
  Counter &C = R.counter("a");
  EXPECT_EQ(C.value(), 0);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42);
  C.reset();
  EXPECT_EQ(C.value(), 0);
}

TEST(Metrics, LookupReturnsStableReferences) {
  MetricsRegistry R;
  Counter &A = R.counter("x");
  Counter &B = R.counter("x");
  EXPECT_EQ(&A, &B);
  // Same name, different kinds: independent instruments.
  Gauge &G = R.gauge("x");
  G.set(7.0);
  A.add(3);
  EXPECT_EQ(A.value(), 3);
  EXPECT_EQ(G.value(), 7.0);
  // reset() zeroes but does not invalidate.
  R.reset();
  EXPECT_EQ(R.counter("x").value(), 0);
  A.add(1);
  EXPECT_EQ(R.counter("x").value(), 1);
}

TEST(Metrics, CounterConcurrentTotalsAreExact) {
  MetricsRegistry R;
  Counter &C = R.counter("hits");
  constexpr int Threads = 8, PerThread = 20000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.add(1);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), int64_t(Threads) * PerThread);
}

TEST(Metrics, GaugeSetAddAndConcurrency) {
  MetricsRegistry R;
  Gauge &G = R.gauge("util");
  G.set(0.25);
  EXPECT_DOUBLE_EQ(G.value(), 0.25);
  G.add(0.5);
  EXPECT_DOUBLE_EQ(G.value(), 0.75);

  // Integer-valued deltas keep double addition exact regardless of the
  // order the CAS loop lands them in.
  Gauge &Sum = R.gauge("sum");
  constexpr int Threads = 8, PerThread = 5000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&Sum] {
      for (int I = 0; I < PerThread; ++I)
        Sum.add(2.0);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_DOUBLE_EQ(Sum.value(), 2.0 * Threads * PerThread);
}

TEST(Metrics, HistogramStatsAndBuckets) {
  MetricsRegistry R;
  Histogram &H = R.histogram("lat");
  EXPECT_EQ(H.count(), 0);
  EXPECT_TRUE(std::isinf(H.min()));
  EXPECT_TRUE(std::isinf(H.max()));

  H.record(1.0);
  H.record(4.0);
  H.record(0.5);
  EXPECT_EQ(H.count(), 3);
  EXPECT_DOUBLE_EQ(H.sum(), 5.5);
  EXPECT_DOUBLE_EQ(H.min(), 0.5);
  EXPECT_DOUBLE_EQ(H.max(), 4.0);
  EXPECT_DOUBLE_EQ(H.mean(), 5.5 / 3.0);

  // Power-of-two magnitude bucketing: monotone, clamped at the ends.
  EXPECT_EQ(Histogram::bucketFor(0.0), 0);
  EXPECT_EQ(Histogram::bucketFor(-3.0), 0);
  EXPECT_LT(Histogram::bucketFor(0.5), Histogram::bucketFor(1.0));
  EXPECT_LT(Histogram::bucketFor(1.0), Histogram::bucketFor(2.5));
  EXPECT_EQ(Histogram::bucketFor(1e300), Histogram::NumBuckets - 1);
  EXPECT_EQ(Histogram::bucketFor(1e-300), 0);
  EXPECT_EQ(H.bucketCount(Histogram::bucketFor(4.0)), 1);

  H.reset();
  EXPECT_EQ(H.count(), 0);
  EXPECT_DOUBLE_EQ(H.sum(), 0.0);
}

TEST(Metrics, HistogramConcurrentHammerIsExact) {
  MetricsRegistry R;
  Histogram &H = R.histogram("work");
  // Integer-representable values: the CAS sum is exact in any order.
  constexpr int Threads = 8, PerThread = 4000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&H, T] {
      for (int I = 0; I < PerThread; ++I)
        H.record(static_cast<double>(T + 1));
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(H.count(), int64_t(Threads) * PerThread);
  // sum = PerThread * (1 + 2 + ... + Threads)
  EXPECT_DOUBLE_EQ(H.sum(),
                   double(PerThread) * Threads * (Threads + 1) / 2.0);
  EXPECT_DOUBLE_EQ(H.min(), 1.0);
  EXPECT_DOUBLE_EQ(H.max(), double(Threads));
}

TEST(Metrics, ConcurrentLookupOfDistinctNames) {
  MetricsRegistry R;
  constexpr int Threads = 8;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&R, T] {
      // Both a private and a shared instrument, looked up under races.
      R.counter("own." + std::to_string(T)).add(T);
      for (int I = 0; I < 1000; ++I)
        R.counter("shared").add(1);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(R.counter("shared").value(), Threads * 1000);
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(R.counter("own." + std::to_string(T)).value(), T);
}

TEST(Metrics, SnapshotAndJson) {
  MetricsRegistry R;
  R.counter("c.one").add(5);
  R.gauge("g.one").set(2.5);
  R.histogram("h.one").record(3.0);
  R.histogram("h.one").record(1.0);

  MetricsRegistry::Snapshot S = R.snapshot();
  EXPECT_EQ(S.Counters.at("c.one"), 5);
  EXPECT_DOUBLE_EQ(S.Gauges.at("g.one"), 2.5);
  EXPECT_EQ(S.Histograms.at("h.one").Count, 2);
  EXPECT_DOUBLE_EQ(S.Histograms.at("h.one").Sum, 4.0);
  EXPECT_DOUBLE_EQ(S.Histograms.at("h.one").Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Histograms.at("h.one").Max, 3.0);

  JsonWriter W;
  W.beginObject();
  R.writeJson(W);
  W.endObject();
  std::string Err;
  std::optional<JsonValue> Doc = JsonValue::parse(W.str(), &Err);
  ASSERT_TRUE(Doc) << Err;
  const JsonValue *Counters = Doc->find("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  const JsonValue *C = Counters->find("c.one");
  ASSERT_TRUE(C && C->isNumber());
  EXPECT_EQ(C->asNumber(), 5.0);
  const JsonValue *H = Doc->find("histograms");
  ASSERT_TRUE(H && H->isObject());
  const JsonValue *H1 = H->find("h.one");
  ASSERT_TRUE(H1 && H1->isObject());
  EXPECT_EQ(H1->find("count")->asNumber(), 2.0);
}

TEST(Metrics, GlobalRegistryShortcuts) {
  Counter &C = metricCounter("test.metrics_test.counter");
  int64_t Before = C.value();
  metricCounter("test.metrics_test.counter").add(2);
  EXPECT_EQ(C.value(), Before + 2);
  EXPECT_EQ(&metricGauge("test.metrics_test.g"),
            &metricGauge("test.metrics_test.g"));
  EXPECT_EQ(&metricHistogram("test.metrics_test.h"),
            &metricHistogram("test.metrics_test.h"));
}

} // namespace
