//===- tests/model_test.cpp - Cost model and schedule helper tests ----------===//

#include "core/CpuBaseline.h"
#include "core/ExecutionModel.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

GraphNode filterNode(FilterPtr F) {
  GraphNode N;
  N.Kind = NodeKind::Filter;
  N.TheFilter = std::move(F);
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// buildInstanceCost paths
//===----------------------------------------------------------------------===//

TEST(InstanceCostModel, ShuffledIsAlwaysCoalesced) {
  GraphNode N = filterNode(makeFig4A());
  WorkEstimate WE = nodeWorkEstimate(N);
  InstanceCost C = buildInstanceCost(Arch, N, WE, 256, 32,
                                     LayoutKind::Shuffled);
  EXPECT_DOUBLE_EQ(C.TxnsPerAccess, 1.0 / 16.0);
  EXPECT_EQ(C.SharedAccesses, 0);
}

TEST(InstanceCostModel, SequentialSmallWorkingSetStages) {
  // pop 1/push 2 with 256 threads: (256*1 + 0 + 256*2)*4 = 3 KB working
  // set fits 16 KB shared memory -> SWPNC stages it coalesced.
  GraphNode N = filterNode(makeFig4A());
  WorkEstimate WE = nodeWorkEstimate(N);
  InstanceCost C = buildInstanceCost(Arch, N, WE, 256, 32,
                                     LayoutKind::Sequential);
  EXPECT_DOUBLE_EQ(C.TxnsPerAccess, 1.0 / 16.0);
  EXPECT_GT(C.SharedAccesses, 0);
}

TEST(InstanceCostModel, SequentialLargeWorkingSetSerializes) {
  // A pop-64 filter at 512 threads: 64*4*512 = 128 KB working set blows
  // the 16 KB budget, so the strided pattern serializes fully.
  FilterBuilder B("Wide", TokenType::Float, TokenType::Float);
  B.setRates(64, 64);
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(64));
  (void)I;
  B.push(B.pop());
  B.endFor();
  GraphNode N = filterNode(B.build());
  WorkEstimate WE = nodeWorkEstimate(N);
  InstanceCost C = buildInstanceCost(Arch, N, WE, 512, 32,
                                     LayoutKind::Sequential);
  EXPECT_DOUBLE_EQ(C.TxnsPerAccess, 1.0);
  EXPECT_EQ(C.SharedAccesses, 0);
}

TEST(InstanceCostModel, RegisterSpillsAddTraffic) {
  FilterBuilder B("Fat", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  const Expr *V = B.pop();
  std::vector<const VarDecl *> Vars;
  for (int I = 0; I < 40; ++I) {
    Vars.push_back(B.declVar("v" + std::to_string(I), V));
    V = B.add(B.ref(Vars.back()), B.litF(1.0));
  }
  B.push(V);
  GraphNode N = filterNode(B.build());
  WorkEstimate WE = nodeWorkEstimate(N);
  ASSERT_GT(WE.Registers, 16);
  InstanceCost Tight = buildInstanceCost(Arch, N, WE, 128, 16,
                                         LayoutKind::Shuffled);
  InstanceCost Roomy = buildInstanceCost(Arch, N, WE, 128, 64,
                                         LayoutKind::Shuffled);
  EXPECT_GT(Tight.SpillAccesses, Roomy.SpillAccesses);
}

TEST(InstanceCostModel, SplitterIsPureDataMovement) {
  GraphNode N;
  N.Kind = NodeKind::Splitter;
  N.SplitKind = SplitterKind::RoundRobin;
  N.Weights = {4, 4};
  WorkEstimate WE = nodeWorkEstimate(N);
  EXPECT_EQ(WE.TranscOps, 0);
  EXPECT_EQ(WE.ChannelReads, 8);
  EXPECT_EQ(WE.ChannelWrites, 8);
  EXPECT_EQ(WE.FloatOps, 0);
}

//===----------------------------------------------------------------------===//
// SwpSchedule helpers
//===----------------------------------------------------------------------===//

TEST(SwpScheduleHelpers, SmOrderSortsByO) {
  SwpSchedule S;
  S.II = 100.0;
  S.Pmax = 2;
  S.Instances = {
      {0, 0, 0, 50.0, 0}, {1, 0, 0, 10.0, 1}, {2, 0, 1, 5.0, 0},
      {3, 0, 0, 30.0, 0},
  };
  auto Order = S.smOrder(0);
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0]->Node, 1);
  EXPECT_EQ(Order[1]->Node, 3);
  EXPECT_EQ(Order[2]->Node, 0);
  EXPECT_EQ(S.smOrder(1).size(), 1u);
}

TEST(SwpScheduleHelpers, StageSpanAndSigma) {
  SwpSchedule S;
  S.II = 10.0;
  S.Pmax = 1;
  S.Instances = {{0, 0, 0, 2.0, 1}, {1, 0, 0, 4.0, 4}};
  EXPECT_EQ(S.stageSpan(), 3);
  EXPECT_DOUBLE_EQ(SwpSchedule::sigma(10.0, S.Instances[1]), 44.0);
  EXPECT_EQ(S.instance(1, 0).F, 4);
}

//===----------------------------------------------------------------------===//
// CPU baseline
//===----------------------------------------------------------------------===//

TEST(CpuBaseline, ScalesWithWork) {
  StreamGraph Small = makeScalePipeline();
  StreamGraph Big = makeFig4Graph();
  auto SSmall = SteadyState::compute(Small);
  auto SBig = SteadyState::compute(Big);
  ASSERT_TRUE(SSmall && SBig);
  EXPECT_GT(cpuCyclesPerBaseIteration(*SSmall), 0.0);
  // The multirate graph does strictly more firings per iteration.
  EXPECT_GT(cpuCyclesPerBaseIteration(*SBig),
            cpuCyclesPerBaseIteration(*SSmall) * 0.5);
}

TEST(CpuBaseline, TranscendentalsAreExpensive) {
  CpuModel M;
  EXPECT_GT(M.CyclesPerTransc, 10 * M.CyclesPerAluOp);
}

TEST(CpuBaseline, SpeedupMath) {
  // 2x the cycles at 2x the clock is a wash.
  EXPECT_DOUBLE_EQ(speedupOverCpu(2000.0, 2.0, 1000.0, 1.0), 1.0);
  // Same cycles, GPU at half the clock: CPU wins 2x -> speedup 0.5.
  EXPECT_DOUBLE_EQ(speedupOverCpu(1000.0, 2.0, 1000.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(speedupOverCpu(1000.0, 1.0, 0.0, 1.0), 0.0);
}

//===----------------------------------------------------------------------===//
// Producer-side access patterns through a consumer-keyed layout
//===----------------------------------------------------------------------===//

TEST(AccessAnalyzerCrossKey, MismatchedKeySerializesUnderStrictRule) {
  // G80 coalescing is all or nothing (thread N must hit WarpBase + N): a
  // producer writing at rate 2 through a layout keyed at rate 4 breaks
  // the pattern and serializes completely, exactly like the sequential
  // layout. This is why the compiler keys each buffer's permutation to
  // its accessor's own rate (Eq. 10 for pops, Eq. 11 for pushes) rather
  // than sharing one key across a rate-mismatched edge.
  AccessSummary Cross =
      analyzeStridedAccess(LayoutKind::Shuffled, 256, 2, 4);
  EXPECT_DOUBLE_EQ(Cross.transactionsPerAccess(), 1.0);
  // Keyed to its own rate, the same traffic coalesces fully.
  AccessSummary Matched =
      analyzeStridedAccess(LayoutKind::Shuffled, 256, 2, 2);
  EXPECT_DOUBLE_EQ(Matched.transactionsPerAccess(), 1.0 / 16.0);
}

//===----------------------------------------------------------------------===//
// Hybrid machine model
//===----------------------------------------------------------------------===//

TEST(MachineModel, ClassLayoutAndFlatIndexing) {
  CpuModel Cpu;
  Cpu.NumCores = 2;
  MachineModel M = MachineModel::hybrid(Arch, /*Pmax=*/4, Cpu,
                                        /*MaxCoarsen=*/8);
  EXPECT_EQ(M.numGpuSms(), 4);
  EXPECT_EQ(M.totalProcs(), 6);
  EXPECT_TRUE(M.hasCpu());
  // SMs occupy the low flat indices, cores follow.
  EXPECT_FALSE(M.isCpu(3));
  EXPECT_TRUE(M.isCpu(4));
  EXPECT_EQ(M.classOf(0).Kind, ProcClassKind::GpuSm);
  EXPECT_EQ(M.classOf(5).Kind, ProcClassKind::CpuCore);
  // Memory budgets come from the class: the SM's share of the
  // DRAM-resident channel store, the core's cache.
  EXPECT_EQ(M.classOf(0).MemBytes, Arch.DramBytes / Arch.NumSMs);
  EXPECT_EQ(M.classOf(4).MemBytes, Cpu.CacheBytesPerCore);

  MachineModel G = MachineModel::gpuOnly(Arch, 4);
  EXPECT_FALSE(G.hasCpu());
  EXPECT_EQ(G.totalProcs(), 4);
  EXPECT_EQ(G.numGpuSms(), 4);
}

TEST(MachineModel, CpuDelayLandsInGpuClockDomain) {
  StreamGraph G = makeScalePipeline();
  ExecutionConfig Config;
  Config.Threads.assign(static_cast<size_t>(G.numNodes()), 4);

  CpuModel Slow;
  CpuModel Fast = Slow;
  Fast.ClockGHz = 2.0 * Slow.ClockGHz;
  ExecutionConfig CSlow = Config, CFast = Config;
  computeCpuDelays(CSlow, G, Slow, Arch);
  computeCpuDelays(CFast, G, Fast, Arch);
  ASSERT_EQ(CSlow.CpuDelay.size(), static_cast<size_t>(G.numNodes()));
  for (const GraphNode &N : G.nodes()) {
    EXPECT_GT(CSlow.CpuDelay[N.Id], 0.0);
    // Twice the host clock halves the delay expressed in GPU cycles.
    EXPECT_NEAR(CSlow.CpuDelay[N.Id], 2.0 * CFast.CpuDelay[N.Id], 1e-9);
    // Exact form: host cycles per firing x threads serialized on the
    // core, converted through the clock ratio.
    EXPECT_NEAR(CSlow.CpuDelay[N.Id],
                cpuCyclesPerFiring(N, Slow) * 4.0 *
                    (Arch.CoreClockGHz / Slow.ClockGHz),
                1e-9);
  }
}

TEST(MachineModel, ProcDelayDispatchesByClass) {
  ExecutionConfig Config;
  Config.Delay = {10.0, 100.0};
  Config.CpuDelay = {50.0, 20.0};
  CpuModel Cpu;
  Cpu.NumCores = 1;
  MachineModel M = MachineModel::hybrid(Arch, /*Pmax=*/2, Cpu, 8);
  EXPECT_DOUBLE_EQ(procDelay(Config, &M, 0, 0), 10.0);
  EXPECT_DOUBLE_EQ(procDelay(Config, &M, 0, 2), 50.0);
  EXPECT_DOUBLE_EQ(procDelay(Config, &M, 1, 1), 100.0);
  EXPECT_DOUBLE_EQ(procDelay(Config, &M, 1, 2), 20.0);
  // Null machine: the homogeneous GPU delay, always.
  EXPECT_DOUBLE_EQ(procDelay(Config, nullptr, 1, 2), 100.0);
}
