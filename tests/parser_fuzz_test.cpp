//===- tests/parser_fuzz_test.cpp - Parser robustness on malformed input ----===//
//
// The parser's contract is parse-or-diagnose: for ANY byte string it
// either returns a stream or fills in a ParseDiagnostic — it never
// crashes, asserts, or returns null silently. This suite drives it with
// the malformed corpus under tests/corpus/parser/ (truncations, bad
// rates, unbalanced split-joins, junk bytes) plus byte-mutated versions
// of well-formed generated programs.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"
#include "support/Rng.h"
#include "testing/DslPrinter.h"
#include "testing/GraphGen.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace sgpu;
using namespace sgpu::testing;

namespace {

std::string corpusDir() {
  return std::string(SGPU_SOURCE_DIR) + "/tests/corpus/parser";
}

std::string readFile(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Parses \p Source and asserts the parse-or-diagnose contract.
void expectParseOrDiagnose(const std::string &Source,
                           const std::string &Label) {
  ParseDiagnostic Diag;
  StreamPtr S = parseStreamProgram(Source, &Diag);
  if (!S) {
    EXPECT_FALSE(Diag.Message.empty())
        << Label << ": parse failed without a diagnostic";
    EXPECT_GT(Diag.Line, 0) << Label << ": diagnostic has no source line";
  }
}

} // namespace

TEST(ParserFuzz, CorpusFilesAllDiagnoseCleanly) {
  int Files = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(corpusDir())) {
    if (Entry.path().extension() != ".str")
      continue;
    ++Files;
    std::string Source = readFile(Entry.path());
    ParseDiagnostic Diag;
    StreamPtr S = parseStreamProgram(Source, &Diag);
    // Every corpus file is deliberately malformed: it must be rejected,
    // and rejected with a located message.
    EXPECT_EQ(S, nullptr) << Entry.path() << " unexpectedly parsed";
    EXPECT_FALSE(Diag.Message.empty()) << Entry.path() << ": no diagnostic";
    EXPECT_GT(Diag.Line, 0) << Entry.path() << ": no source line";
  }
  EXPECT_GE(Files, 10) << "parser corpus went missing from " << corpusDir();
}

TEST(ParserFuzz, SpecificRejections) {
  struct Case {
    const char *Source;
    const char *MessagePart;
  } Cases[] = {
      {"filter f (int->int, pop 0, push 0) { push(1); }",
       "pop or push at least one token"},
      {"filter f (int->int, pop 1, push 99999999999999999999999999) {"
       " push(pop()); }",
       "out of range"},
      {"filter f (int->int, pop 1, push 1) { int a[0]; push(pop()); }",
       "array size must be a positive constant"},
      {"filter f (float->float, pop 1, push 1) { push(pop() % 2.0); }",
       "require int operands"},
      {"filter f (float->float, pop 1, push 1) { push(~pop()); }",
       "'~' requires an int operand"},
      {"filter f (float->float, pop 1, push 2) { push(peek(pop())); "
       "pop(); }",
       "peek depth must be an int expression"},
      {"filter f (float->float, pop 1, push 1) {"
       " for (i in 0..pop()) { push(1.0); } }",
       "loop bounds must be int expressions"},
      {"filter f (int->int, pop 1, push 1) {"
       " const int w[2] = {1, 2}; w[0] = pop(); push(w[0]); }",
       "read-only const"},
      {"filter f (int->int, pop 1, push 1) {"
       " state int hist[4] = {0, 0, 0, 0}; push(pop()); }",
       "state int arrays are not supported"},
  };
  for (const Case &C : Cases) {
    ParseDiagnostic Diag;
    StreamPtr S = parseStreamProgram(C.Source, &Diag);
    EXPECT_EQ(S, nullptr) << C.Source;
    EXPECT_NE(Diag.Message.find(C.MessagePart), std::string::npos)
        << "for: " << C.Source << "\n  got: " << Diag.str();
  }
}

TEST(ParserFuzz, MathBuiltinsPromoteIntArguments) {
  // C-style implicit int->float promotion instead of an assert.
  ParseDiagnostic Diag;
  StreamPtr S = parseStreamProgram(
      "filter f (int->float, pop 1, push 1) {"
      " push(sqrt(pop()) + pow(2, 3) + min(1, 2.0)); }",
      &Diag);
  EXPECT_NE(S, nullptr) << Diag.str();
}

TEST(ParserFuzz, ByteMutationsNeverCrashTheParser) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    GraphSpec Spec = generateGraphSpec(Seed);
    StreamPtr S = buildStream(Spec);
    DslPrintResult P = printStreamDsl(*S);
    ASSERT_TRUE(P.Ok) << P.Error;
    Rng R(Seed * 0x9e3779b97f4a7c15ull);
    for (int M = 0; M < 48; ++M) {
      std::string Text = P.Text;
      int Kind = static_cast<int>(R.nextInt(4));
      size_t Size = Text.size();
      if (Kind == 0 && Size > 0) {
        Text[static_cast<size_t>(R.nextInt(static_cast<int64_t>(Size)))] =
            static_cast<char>(R.nextInt(256));
      } else if (Kind == 1) {
        Text.resize(
            static_cast<size_t>(R.nextInt(static_cast<int64_t>(Size) + 1)));
      } else if (Kind == 2 && Size > 2) {
        size_t A =
            static_cast<size_t>(R.nextInt(static_cast<int64_t>(Size)));
        size_t Len = std::min<size_t>(
            static_cast<size_t>(R.nextInt(64) + 1), Size - A);
        Text.insert(
            static_cast<size_t>(R.nextInt(static_cast<int64_t>(Size))),
            Text.substr(A, Len));
      } else if (Size > 0) {
        size_t A =
            static_cast<size_t>(R.nextInt(static_cast<int64_t>(Size)));
        Text.erase(A, std::min<size_t>(
                          static_cast<size_t>(R.nextInt(64) + 1), Size - A));
      }
      expectParseOrDiagnose(Text, "seed " + std::to_string(Seed) +
                                      " mutation " + std::to_string(M));
    }
  }
}
