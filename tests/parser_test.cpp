//===- tests/parser_test.cpp - DSL lexer and parser tests -------------------===//

#include "parser/Parser.h"

#include "ir/Interpreter.h"
#include "parser/Lexer.h"
#include "sdf/SteadyState.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace sgpu;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, BasicTokens) {
  auto Toks = lexStreamProgram("filter F(int -> float, pop 2, push 1)");
  ASSERT_GE(Toks.size(), 14u);
  EXPECT_TRUE(Toks[0].isIdent("filter"));
  EXPECT_TRUE(Toks[1].isIdent("F"));
  EXPECT_TRUE(Toks[2].is(TokKind::LParen));
  EXPECT_TRUE(Toks[3].isIdent("int"));
  EXPECT_TRUE(Toks[4].is(TokKind::Arrow));
  EXPECT_TRUE(Toks.back().is(TokKind::Eof));
}

TEST(Lexer, NumbersAndRanges) {
  auto Toks = lexStreamProgram("0..8 1.5 2e3 42");
  EXPECT_TRUE(Toks[0].is(TokKind::IntLiteral));
  EXPECT_EQ(Toks[0].IntValue, 0);
  EXPECT_TRUE(Toks[1].is(TokKind::DotDot));
  EXPECT_TRUE(Toks[2].is(TokKind::IntLiteral));
  EXPECT_EQ(Toks[2].IntValue, 8);
  EXPECT_TRUE(Toks[3].is(TokKind::FloatLiteral));
  EXPECT_DOUBLE_EQ(Toks[3].FloatValue, 1.5);
  EXPECT_TRUE(Toks[4].is(TokKind::FloatLiteral));
  EXPECT_DOUBLE_EQ(Toks[4].FloatValue, 2000.0);
  EXPECT_EQ(Toks[5].IntValue, 42);
}

TEST(Lexer, CommentsAndLines) {
  auto Toks = lexStreamProgram("a // comment\n/* block\nspans */ b");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Line, 1);
  EXPECT_TRUE(Toks[1].isIdent("b"));
  EXPECT_EQ(Toks[1].Line, 3);
}

TEST(Lexer, MultiCharOperators) {
  auto Toks = lexStreamProgram("<< >> <= >= == != && || -> ..");
  TokKind Want[] = {TokKind::Shl, TokKind::Shr, TokKind::Le,
                    TokKind::Ge,  TokKind::EqEq, TokKind::Ne,
                    TokKind::AndAnd, TokKind::OrOr, TokKind::Arrow,
                    TokKind::DotDot, TokKind::Eof};
  ASSERT_EQ(Toks.size(), 11u);
  for (size_t I = 0; I < Toks.size(); ++I)
    EXPECT_TRUE(Toks[I].is(Want[I])) << I;
}

TEST(Lexer, InvalidCharacter) {
  auto Toks = lexStreamProgram("a $ b");
  EXPECT_TRUE(Toks[1].is(TokKind::Error));
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *MovingAvgSrc = R"(
pipeline MovingAverage {
  filter Avg(float -> float, pop 1, push 1, peek 4) {
    float sum = 0.0;
    for (i in 0..4) { sum = sum + peek(i); }
    push(sum / 4.0);
    pop();
  }
  filter Gain(float -> float, pop 1, push 1) {
    const float g = 2.0;
    push(pop() * g);
  }
}
)";

StreamPtr mustParse(const char *Src) {
  ParseDiagnostic Diag;
  StreamPtr S = parseStreamProgram(Src, &Diag);
  EXPECT_NE(S, nullptr) << Diag.str();
  return S;
}

} // namespace

TEST(Parser, MovingAverageStructure) {
  StreamPtr S = mustParse(MovingAvgSrc);
  ASSERT_TRUE(isa<PipelineStream>(S.get()));
  const auto *P = cast<PipelineStream>(S.get());
  ASSERT_EQ(P->children().size(), 2u);
  const auto *Avg = cast<FilterStream>(P->children()[0].get());
  EXPECT_EQ(Avg->filter()->name(), "Avg");
  EXPECT_EQ(Avg->filter()->popRate(), 1);
  EXPECT_EQ(Avg->filter()->peekRate(), 4);
  EXPECT_TRUE(Avg->filter()->isPeeking());
}

TEST(Parser, ParsedFilterExecutes) {
  StreamPtr S = mustParse(MovingAvgSrc);
  StreamGraph G = flatten(*S);
  ASSERT_FALSE(G.validate().has_value());
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());

  GraphInterpreter GI(G);
  for (double V : {4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0})
    GI.feedInput({Scalar::makeFloat(V)});
  auto Order = G.topologicalOrder();
  for (int V : *Order)
    GI.fireNode(V, SS->initFirings()[V]);
  ASSERT_TRUE(GI.runSteadyState(SS->repetitions(), 4));
  // Window means: 10, 14, 18, 22 (the window slides by one); gain 2x.
  ASSERT_EQ(GI.output().size(), 4u);
  EXPECT_DOUBLE_EQ(GI.output()[0].asFloat(), 20.0);
  EXPECT_DOUBLE_EQ(GI.output()[1].asFloat(), 28.0);
  EXPECT_DOUBLE_EQ(GI.output()[2].asFloat(), 36.0);
  EXPECT_DOUBLE_EQ(GI.output()[3].asFloat(), 44.0);
}

TEST(Parser, SplitJoinForms) {
  StreamPtr S = mustParse(R"(
    splitjoin duplicate join roundrobin(1, 1) {
      filter A(int -> int, pop 1, push 1) { push(pop() * 2); }
      filter B(int -> int, pop 1, push 1) { push(pop() * 3); }
    }
  )");
  const auto *SJ = cast<SplitJoinStream>(S.get());
  EXPECT_EQ(SJ->splitterKind(), SplitterKind::Duplicate);
  EXPECT_EQ(SJ->joinerWeights(), (std::vector<int64_t>{1, 1}));

  StreamPtr S2 = mustParse(R"(
    splitjoin roundrobin(2, 2) join roundrobin(2, 2) {
      filter A(int -> int, pop 2, push 2) { push(pop()); push(pop()); }
      filter B(int -> int, pop 2, push 2) { push(pop()); push(pop()); }
    }
  )");
  const auto *SJ2 = cast<SplitJoinStream>(S2.get());
  EXPECT_EQ(SJ2->splitterKind(), SplitterKind::RoundRobin);
  EXPECT_EQ(SJ2->splitterWeights(), (std::vector<int64_t>{2, 2}));
}

TEST(Parser, ConstArraysAndIndexing) {
  StreamPtr S = mustParse(R"(
    filter Fir(float -> float, pop 1, push 1, peek 3) {
      const float h[3] = {0.25, 0.5, 0.25};
      float acc = 0.0;
      for (t in 0..3) { acc = acc + h[t] * peek(t); }
      push(acc);
      pop();
    }
  )");
  const auto *F = cast<FilterStream>(S.get());
  ASSERT_EQ(F->filter()->work().fields().size(), 1u);
  EXPECT_EQ(F->filter()->fieldValues(0).size(), 3u);
  EXPECT_DOUBLE_EQ(F->filter()->fieldValues(0)[1].asFloat(), 0.5);
}

TEST(Parser, StateDeclarationsMakeStatefulFilters) {
  StreamPtr S = mustParse(R"(
    filter Acc(int -> int, pop 1, push 1) {
      state int total = 0;
      total = total + pop();
      push(total);
    }
  )");
  const auto *F = cast<FilterStream>(S.get());
  EXPECT_TRUE(F->filter()->isStateful());
}

TEST(Parser, IntOpsCastsAndControlFlow) {
  StreamPtr S = mustParse(R"(
    filter Bits(int -> float, pop 1, push 1) {
      int v = pop();
      int m = (v << 2) & 255 | 1;
      if (m >= 128) { m = m % 128; } else { m = ~m & 7; }
      push((float)(m) * 0.5);
    }
  )");
  const auto *F = cast<FilterStream>(S.get());
  // Execute one firing to confirm semantics survive the round trip.
  ChannelBuffer In(TokenType::Int), Out(TokenType::Float);
  In.push(Scalar::makeInt(40)); // 40<<2 = 160; |1 = 161; >=128 -> %128 = 33.
  fireFilter(*F->filter(), &In, &Out);
  EXPECT_DOUBLE_EQ(Out.pop().asFloat(), 16.5);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

namespace {

ParseDiagnostic mustFail(const char *Src) {
  ParseDiagnostic Diag;
  StreamPtr S = parseStreamProgram(Src, &Diag);
  EXPECT_EQ(S, nullptr);
  return Diag;
}

} // namespace

TEST(ParserDiagnostics, UndeclaredVariable) {
  ParseDiagnostic D = mustFail(
      "filter F(int -> int, pop 1, push 1) { push(x); }");
  EXPECT_NE(D.Message.find("undeclared variable 'x'"), std::string::npos)
      << D.str();
}

TEST(ParserDiagnostics, PeekBelowPop) {
  ParseDiagnostic D = mustFail(
      "filter F(int -> int, pop 4, push 1, peek 2) { push(pop()); }");
  EXPECT_NE(D.Message.find("peek depth"), std::string::npos);
}

TEST(ParserDiagnostics, AssignToConst) {
  ParseDiagnostic D = mustFail(R"(
    filter F(int -> int, pop 1, push 1) {
      const int k = 3;
      k = 4;
      push(pop());
    }
  )");
  EXPECT_NE(D.Message.find("read-only"), std::string::npos);
  EXPECT_EQ(D.Line, 4);
}

TEST(ParserDiagnostics, MismatchedBranchCounts) {
  ParseDiagnostic D = mustFail(R"(
    splitjoin duplicate join roundrobin(1, 1, 1) {
      filter A(int -> int, pop 1, push 1) { push(pop()); }
      filter B(int -> int, pop 1, push 1) { push(pop()); }
    }
  )");
  EXPECT_NE(D.Message.find("branch count"), std::string::npos);
}

TEST(ParserDiagnostics, LineNumbersTracked) {
  ParseDiagnostic D = mustFail("pipeline {\n\n  bogus\n}");
  EXPECT_EQ(D.Line, 3);
}

TEST(ParserDiagnostics, TrailingGarbageRejected) {
  ParseDiagnostic D = mustFail(
      "filter F(int -> int, pop 1, push 1) { push(pop()); } extra");
  EXPECT_NE(D.Message.find("end of input"), std::string::npos);
}
