//===- tests/perf_gate_test.cpp - JSON reader + perf gate logic tests --------===//

#include "support/PerfGate.h"

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace sgpu;

namespace {

// --- JsonValue reader ------------------------------------------------------

TEST(JsonReader, ScalarsAndNesting) {
  std::string Err;
  std::optional<JsonValue> Doc = JsonValue::parse(
      R"({"a": 1.5, "b": "two\nlines", "c": [true, false, null, -3e2],)"
      R"( "d": {"nested": "x"}})",
      &Err);
  ASSERT_TRUE(Doc) << Err;
  ASSERT_TRUE(Doc->isObject());
  EXPECT_DOUBLE_EQ(Doc->find("a")->asNumber(), 1.5);
  EXPECT_EQ(Doc->find("b")->asString(), "two\nlines");
  const JsonValue *C = Doc->find("c");
  ASSERT_TRUE(C && C->isArray());
  ASSERT_EQ(C->elements().size(), 4u);
  EXPECT_TRUE(C->elements()[0].asBool());
  EXPECT_FALSE(C->elements()[1].asBool());
  EXPECT_EQ(C->elements()[2].kind(), JsonValue::Kind::Null);
  EXPECT_DOUBLE_EQ(C->elements()[3].asNumber(), -300.0);
  EXPECT_EQ(Doc->find("d")->find("nested")->asString(), "x");
  EXPECT_EQ(Doc->find("missing"), nullptr);
}

TEST(JsonReader, RejectsMalformedInput) {
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "{\"a\":1} trailing", "\"unterminated", "[1,2"}) {
    std::string Err;
    EXPECT_FALSE(JsonValue::parse(Bad, &Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

TEST(JsonReader, DepthLimited) {
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::parse(Deep));
  std::string Ok(32, '[');
  Ok += std::string(32, ']');
  EXPECT_TRUE(JsonValue::parse(Ok));
}

TEST(JsonReader, RoundTripsWriterOutput) {
  JsonWriter W;
  W.beginObject();
  W.writeString("s", "quote \" slash \\ nl \n");
  W.writeDouble("d", 0.125);
  W.writeInt("i", -42);
  W.writeBool("t", true);
  W.endObject();
  std::optional<JsonValue> Doc = JsonValue::parse(W.str());
  ASSERT_TRUE(Doc);
  EXPECT_EQ(Doc->find("s")->asString(), "quote \" slash \\ nl \n");
  EXPECT_DOUBLE_EQ(Doc->find("d")->asNumber(), 0.125);
  EXPECT_DOUBLE_EQ(Doc->find("i")->asNumber(), -42.0);
  EXPECT_TRUE(Doc->find("t")->asBool());
}

// --- Metric classification -------------------------------------------------

TEST(PerfGate, MetricClassification) {
  EXPECT_EQ(classifyMetric("simplex.pivots"), MetricClass::Count);
  EXPECT_EQ(classifyMetric("bnb.nodes_solved"), MetricClass::Count);
  EXPECT_EQ(classifyMetric("buffer_bytes"), MetricClass::Count);
  EXPECT_EQ(classifyMetric("stage.compile.total.seconds"),
            MetricClass::Time);
  EXPECT_EQ(classifyMetric("solver.worker_utilization"),
            MetricClass::Time);
  EXPECT_EQ(classifyMetric("final_ii"), MetricClass::Quality);
  EXPECT_EQ(classifyMetric("speedup"), MetricClass::Quality);
  EXPECT_TRUE(metricBiggerIsBetter("speedup"));
  EXPECT_FALSE(metricBiggerIsBetter("final_ii"));
  EXPECT_FALSE(metricBiggerIsBetter("simplex.pivots"));
}

// --- Gate comparison -------------------------------------------------------

PerfSample sample(const std::string &Name,
                  std::map<std::string, double> Metrics) {
  PerfSample S;
  S.Name = Name;
  S.Metrics = std::move(Metrics);
  return S;
}

TEST(PerfGate, IdenticalRunsPass) {
  std::vector<PerfSample> Base = {
      sample("FMRadio", {{"simplex.pivots", 1000},
                         {"final_ii", 50.0},
                         {"speedup", 10.0},
                         {"stage.core.schedule.seconds", 0.5}})};
  PerfComparison Cmp = comparePerf(Base, Base);
  EXPECT_TRUE(Cmp.Pass);
  EXPECT_TRUE(Cmp.Findings.empty());
}

TEST(PerfGate, CountRegressionGatesAtThreshold) {
  std::vector<PerfSample> Base = {
      sample("DCT", {{"simplex.pivots", 1000}})};
  // +30% is inside the default 35% allowance.
  PerfComparison Ok =
      comparePerf(Base, {sample("DCT", {{"simplex.pivots", 1300}})});
  EXPECT_TRUE(Ok.Pass);
  // +40% is outside.
  PerfComparison Bad =
      comparePerf(Base, {sample("DCT", {{"simplex.pivots", 1400}})});
  EXPECT_FALSE(Bad.Pass);
  ASSERT_EQ(Bad.Findings.size(), 1u);
  EXPECT_EQ(Bad.Findings[0].K, PerfFinding::Kind::Regression);
  EXPECT_TRUE(Bad.Findings[0].Fails);
  EXPECT_EQ(Bad.Findings[0].Metric, "simplex.pivots");
  // Counters shrinking is an improvement, never gated.
  PerfComparison Better =
      comparePerf(Base, {sample("DCT", {{"simplex.pivots", 10}})});
  EXPECT_TRUE(Better.Pass);
}

TEST(PerfGate, QualityIsGatedTightAndDirectionAware) {
  std::vector<PerfSample> Base = {
      sample("FFT", {{"final_ii", 100.0}, {"speedup", 20.0}})};
  // II creeping up 3% fails the 2% quality threshold.
  EXPECT_FALSE(
      comparePerf(Base, {sample("FFT", {{"final_ii", 103.0},
                                        {"speedup", 20.0}})})
          .Pass);
  // Speedup regresses *downward*.
  EXPECT_FALSE(
      comparePerf(Base, {sample("FFT", {{"final_ii", 100.0},
                                        {"speedup", 19.0}})})
          .Pass);
  // Movement inside 2% (or improvement) passes.
  EXPECT_TRUE(
      comparePerf(Base, {sample("FFT", {{"final_ii", 101.0},
                                        {"speedup", 25.0}})})
          .Pass);
}

TEST(PerfGate, TimeRegressionsWarnUnlessGated) {
  std::vector<PerfSample> Base = {
      sample("DES", {{"stage.profile.sweep.seconds", 1.0}})};
  std::vector<PerfSample> Slow = {
      sample("DES", {{"stage.profile.sweep.seconds", 10.0}})};
  PerfComparison Cmp = comparePerf(Base, Slow);
  EXPECT_TRUE(Cmp.Pass); // Reported, not gated.
  ASSERT_EQ(Cmp.Findings.size(), 1u);
  EXPECT_EQ(Cmp.Findings[0].K, PerfFinding::Kind::TimeRegression);
  EXPECT_FALSE(Cmp.Findings[0].Fails);

  PerfThresholds Strict;
  Strict.GateTimes = true;
  PerfComparison Gated = comparePerf(Base, Slow, Strict);
  EXPECT_FALSE(Gated.Pass);
  EXPECT_EQ(Gated.Findings[0].K, PerfFinding::Kind::Regression);
}

TEST(PerfGate, MissingBenchmarkAndMetricFail) {
  std::vector<PerfSample> Base = {
      sample("Bitonic", {{"simplex.pivots", 10}})};
  // Measured benchmark absent from the baseline.
  PerfComparison NoBench =
      comparePerf(Base, {sample("Unknown", {{"simplex.pivots", 10}})});
  EXPECT_FALSE(NoBench.Pass);
  EXPECT_EQ(NoBench.Findings[0].K, PerfFinding::Kind::MissingBenchmark);
  // Baseline metric that vanished from the run.
  PerfComparison NoMetric = comparePerf(Base, {sample("Bitonic", {})});
  EXPECT_FALSE(NoMetric.Pass);
  EXPECT_EQ(NoMetric.Findings[0].K, PerfFinding::Kind::MissingMetric);
  // A new measured metric only warns.
  PerfComparison Extra = comparePerf(
      Base, {sample("Bitonic", {{"simplex.pivots", 10}, {"new.thing", 1}})});
  EXPECT_TRUE(Extra.Pass);
  ASSERT_EQ(Extra.Findings.size(), 1u);
  EXPECT_EQ(Extra.Findings[0].K, PerfFinding::Kind::NewMetric);
}

TEST(PerfGate, FailuresSortFirst) {
  std::vector<PerfSample> Base = {sample("A", {{"simplex.pivots", 100}})};
  std::vector<PerfSample> Run = {
      sample("A", {{"simplex.pivots", 200}, {"new.counter", 5}})};
  PerfComparison Cmp = comparePerf(Base, Run);
  ASSERT_EQ(Cmp.Findings.size(), 2u);
  EXPECT_TRUE(Cmp.Findings[0].Fails);
  EXPECT_FALSE(Cmp.Findings[1].Fails);
}

TEST(PerfGate, ZeroBaselineUsesAbsoluteSlack) {
  std::vector<PerfSample> Base = {sample("B", {{"sdf.rate_inconsistent", 0}})};
  // Within the absolute slack of CountRel.
  EXPECT_TRUE(
      comparePerf(Base, {sample("B", {{"sdf.rate_inconsistent", 0}})}).Pass);
  EXPECT_FALSE(
      comparePerf(Base, {sample("B", {{"sdf.rate_inconsistent", 3}})}).Pass);
}

// --- Report serialization round trip ---------------------------------------

TEST(PerfGate, SamplesRoundTripThroughJson) {
  std::vector<PerfSample> Samples = {
      sample("FMRadio", {{"simplex.pivots", 1234},
                         {"final_ii", 56.5},
                         {"stage.core.schedule.seconds", 0.25}}),
      sample("DCT", {{"bnb.nodes_solved", 7}})};
  std::string Doc = perfSamplesToJson(Samples);
  std::string Err;
  std::optional<std::vector<PerfSample>> Back =
      parsePerfSamples(Doc, &Err);
  ASSERT_TRUE(Back) << Err;
  ASSERT_EQ(Back->size(), 2u);
  EXPECT_EQ((*Back)[0].Name, "FMRadio");
  EXPECT_DOUBLE_EQ((*Back)[0].Metrics.at("final_ii"), 56.5);
  EXPECT_DOUBLE_EQ((*Back)[1].Metrics.at("bnb.nodes_solved"), 7.0);

  // With a comparison attached, the document still parses and the
  // verdict is readable.
  PerfComparison Cmp = comparePerf(Samples, Samples);
  std::string WithCmp = perfSamplesToJson(Samples, &Cmp);
  std::optional<JsonValue> Parsed = JsonValue::parse(WithCmp);
  ASSERT_TRUE(Parsed);
  EXPECT_TRUE(Parsed->find("comparison")->find("pass")->asBool());
  EXPECT_EQ(Parsed->find("schema")->asString(), "sgpu-perf-v1");
}

TEST(PerfGate, ParseRejectsBadDocuments) {
  std::string Err;
  EXPECT_FALSE(parsePerfSamples("{}", &Err));
  EXPECT_FALSE(parsePerfSamples("{\"benchmarks\": [{}]}", &Err));
  EXPECT_FALSE(parsePerfSamples(
      "{\"benchmarks\": [{\"name\":\"A\",\"metrics\":{\"m\":\"x\"}}]}",
      &Err));
  EXPECT_FALSE(parsePerfSamples("not json", &Err));
}

} // namespace
