//===- tests/profile_test.cpp - Profiling and Algorithm 7 tests -------------===//

#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

} // namespace

TEST(Profiler, NumFiringsDivisibleByAllThreadCounts) {
  StreamGraph G = makeScalePipeline();
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  for (int T = 0; T < ProfileTable::NumThreadCounts; ++T)
    EXPECT_EQ(PT.numFirings() % ProfileThreadCounts[T], 0)
        << "Fig. 6 requires equal work per configuration";
}

TEST(Profiler, InfeasiblePairsMarkedInfinity) {
  StreamGraph G = makeScalePipeline();
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  // regs=64 x threads=512 exceeds the register file.
  EXPECT_EQ(PT.at(0, 3, 3), ProfileTable::Infeasible);
  // regs=16 x threads=512 fits.
  EXPECT_LT(PT.at(0, 0, 3), ProfileTable::Infeasible);
}

TEST(Profiler, MoreThreadsMoreThroughput) {
  // For a compute-bound filter the same total work should not get slower
  // with more threads (latency hiding improves).
  StreamGraph G = makeScalePipeline();
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  EXPECT_LE(PT.at(0, 0, 3), PT.at(0, 0, 0) * 1.01);
}

TEST(Profiler, CoalescingAffectsRunTimes) {
  // Profile the multirate graph both ways; the non-coalesced layout must
  // never be faster for a pop-rate > 1 filter.
  StreamGraph G = makeFig4Graph();
  ProfileTable Coal = profileGraph(Arch, G, LayoutKind::Shuffled);
  ProfileTable Seq = profileGraph(Arch, G, LayoutKind::Sequential);
  int RidxOf32 = 2, TidxOf256 = 1;
  EXPECT_LE(Coal.at(1, RidxOf32, TidxOf256),
            Seq.at(1, RidxOf32, TidxOf256));
}

TEST(ConfigSelection, PicksFeasibleGlobalPair) {
  StreamGraph G = makeFig4Graph();
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  ASSERT_TRUE(Config.has_value());
  EXPECT_TRUE(Config->RegLimit == 16 || Config->RegLimit == 20 ||
              Config->RegLimit == 32 || Config->RegLimit == 64);
  for (int64_t T : Config->Threads) {
    EXPECT_GE(T, 128);
    EXPECT_LE(T, Config->NumThreads);
  }
  for (double D : Config->Delay)
    EXPECT_GT(D, 0.0);
}

TEST(ConfigSelection, CandidatesEnumerated) {
  StreamGraph G = makeScalePipeline();
  auto SS = SteadyState::compute(G);
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  std::vector<ConfigCandidate> Cands;
  auto Config = selectExecutionConfig(*SS, PT, &Cands);
  ASSERT_TRUE(Config.has_value());
  EXPECT_EQ(Cands.size(), 16u); // 4 register limits x 4 thread counts.
  int Feasible = 0;
  for (const ConfigCandidate &C : Cands)
    Feasible += C.Feasible;
  EXPECT_GT(Feasible, 0);
  // The winner's scaled II must be minimal among feasible candidates.
  double Best = ProfileTable::Infeasible;
  for (const ConfigCandidate &C : Cands)
    if (C.Feasible)
      Best = std::min(Best, C.WorkScaledII);
  bool WinnerSeen = false;
  for (const ConfigCandidate &C : Cands)
    if (C.Feasible && C.RegLimit == Config->RegLimit &&
        C.NumThreads == Config->NumThreads &&
        C.WorkScaledII <= Best + 1e-12)
      WinnerSeen = true;
  EXPECT_TRUE(WinnerSeen);
}

TEST(ConfigSelection, FixedConfigMatchesRequest) {
  StreamGraph G = makeScalePipeline();
  auto SS = SteadyState::compute(G);
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = makeFixedConfig(*SS, PT, 32, 256);
  ASSERT_TRUE(Config.has_value());
  EXPECT_EQ(Config->RegLimit, 32);
  EXPECT_EQ(Config->NumThreads, 256);
  for (int64_t T : Config->Threads)
    EXPECT_EQ(T, 256);
}

TEST(ConfigSelection, FixedConfigRejectsInfeasible) {
  StreamGraph G = makeScalePipeline();
  auto SS = SteadyState::compute(G);
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  EXPECT_FALSE(makeFixedConfig(*SS, PT, 64, 512).has_value());
}

TEST(GpuSteadyState, CoarseningDividesInstances) {
  // Base reps {3, 2} with 256/128 threads: M = lcm(256/gcd(256,3),
  // 128/gcd(128,2)) = lcm(256, 64) = 256.
  GpuSteadyState GSS = computeGpuSteadyState({3, 2}, {256, 128});
  EXPECT_EQ(GSS.Multiplier, 256);
  EXPECT_EQ(GSS.Instances[0], 3);
  EXPECT_EQ(GSS.Instances[1], 4);
  // Balance is preserved: instances * threads == reps * multiplier.
  EXPECT_EQ(GSS.Instances[0] * 256, 3 * GSS.Multiplier);
  EXPECT_EQ(GSS.Instances[1] * 128, 2 * GSS.Multiplier);
}

TEST(GpuSteadyState, UniformThreadsGiveOneInstance) {
  GpuSteadyState GSS = computeGpuSteadyState({1, 1, 1}, {128, 128, 128});
  EXPECT_EQ(GSS.Multiplier, 128);
  for (int64_t I : GSS.Instances)
    EXPECT_EQ(I, 1);
}
