//===- tests/random_graph_test.cpp - Randomized end-to-end properties -------===//
//
// Property tests over randomly generated stream programs: for every
// generated graph, the rate solver must balance it, the compiler must
// produce a verifier-clean schedule, and the software-pipelined
// functional execution must match the sequential reference bit for bit.
// This is the fuzzing layer over the whole pipeline.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "gpusim/FunctionalSim.h"
#include "ir/FilterBuilder.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"
#include "sdf/RateSolver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace sgpu;

namespace {

/// A random stateless int filter with rates in [1, 4] and a short
/// arithmetic body derived from the seed. With \p RateNeutral the push
/// rate equals the pop rate (needed inside duplicate split-joins so the
/// branches stay balanced against {1,1} joiner weights).
FilterPtr makeRandomFilter(Rng &R, const std::string &Name,
                           bool RateNeutral = false) {
  int64_t Pop = R.nextIntInRange(1, 4);
  int64_t Push = RateNeutral ? Pop : R.nextIntInRange(1, 4);
  bool Peeks = R.nextInt(4) == 0;
  int64_t Peek = Peeks ? Pop + R.nextIntInRange(1, 3) : Pop;

  FilterBuilder B(Name, TokenType::Int, TokenType::Int);
  B.setRates(Pop, Push, Peek);
  // Mix all peekable tokens into an accumulator.
  const VarDecl *Acc = B.declVar("acc", B.litI(R.nextIntInRange(0, 9)));
  const VarDecl *I = B.beginFor("i", B.litI(0), B.litI(Peek));
  switch (R.nextInt(3)) {
  case 0:
    B.assign(Acc, B.add(B.ref(Acc), B.peek(B.ref(I))));
    break;
  case 1:
    B.assign(Acc, B.bitXor(B.ref(Acc),
                           B.add(B.peek(B.ref(I)), B.litI(3))));
    break;
  default:
    B.assign(Acc, B.add(B.mul(B.ref(Acc), B.litI(3)), B.peek(B.ref(I))));
    break;
  }
  B.endFor();
  for (int64_t P = 0; P < Push; ++P)
    B.push(B.add(B.ref(Acc), B.litI(P)));
  B.popDiscard(Pop);
  return B.build();
}

/// A random hierarchical stream: pipelines of filters with occasional
/// duplicate split-joins. \p RateNeutral forces every filter to preserve
/// token counts so the stream's overall rate ratio is exactly 1 — a
/// sufficient condition for balancing duplicate split-joins with {1,1}
/// joiner weights.
StreamPtr makeRandomStream(Rng &R, int Depth, int &Counter,
                           bool RateNeutral = false) {
  std::string Tag = std::to_string(Counter++);
  if (Depth <= 0 || R.nextInt(3) != 0)
    return filterStream(makeRandomFilter(R, "F" + Tag, RateNeutral));

  // A duplicate split-join doubles tokens, so it is never rate neutral;
  // inside a neutral region only pipelines/filters may appear.
  if (RateNeutral || R.nextInt(2) == 0) {
    // Pipeline of 2-3 sub-streams.
    std::vector<StreamPtr> Parts;
    int64_t N = R.nextIntInRange(2, 3);
    for (int64_t I = 0; I < N; ++I)
      Parts.push_back(makeRandomStream(R, Depth - 1, Counter, RateNeutral));
    return pipelineStream(std::move(Parts));
  }
  // Duplicate split-join over two rate-neutral branches, joined {1,1}.
  std::vector<StreamPtr> Branches;
  Branches.push_back(makeRandomStream(R, Depth - 1, Counter, true));
  Branches.push_back(makeRandomStream(R, Depth - 1, Counter, true));
  return duplicateSplitJoin(std::move(Branches), {1, 1});
}

std::vector<Scalar> randomInput(Rng &R, int64_t N) {
  std::vector<Scalar> V;
  for (int64_t I = 0; I < N; ++I)
    V.push_back(Scalar::makeInt(R.nextInt(1000)));
  return V;
}

} // namespace

class RandomGraph : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraph, RatesBalanceAndGraphValidates) {
  Rng R(GetParam());
  int Counter = 0;
  StreamGraph G = flatten(*makeRandomStream(R, 2, Counter));
  auto Err = G.validate();
  ASSERT_FALSE(Err.has_value()) << *Err;
  auto Reps = computeRepetitionVector(G);
  ASSERT_TRUE(Reps.has_value());
  EXPECT_TRUE(isBalanced(G, *Reps));
  EXPECT_FALSE(validateGraphRates(G).has_value());
}

TEST_P(RandomGraph, ScheduleVerifiesAndExecutesCorrectly) {
  Rng R(GetParam());
  int Counter = 0;
  StreamGraph G = flatten(*makeRandomStream(R, 2, Counter));

  const GpuArch Arch = GpuArch::geForce8800GTS512();
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  ASSERT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);

  SchedulerOptions SO;
  SO.Pmax = 4;
  SO.TimeBudgetSeconds = 0.25;
  auto Sched = scheduleSwp(G, *SS, *Config, GSS, SO);
  ASSERT_TRUE(Sched.has_value());
  auto VErr = verifySchedule(G, *SS, *Config, GSS, Sched->Schedule);
  ASSERT_FALSE(VErr.has_value()) << *VErr;

  // Keep the functional run small: skip graphs whose coarsened steady
  // state covers too many base firings to execute quickly.
  int64_t TotalBase = 0;
  for (int V = 0; V < G.numNodes(); ++V)
    TotalBase += GSS.Instances[V] * Config->Threads[V];
  if (TotalBase > 40000)
    GTEST_SKIP() << "functional run too large for a unit test";

  SwpFunctionalSim Sim(G, *SS, *Config, GSS, Sched->Schedule);
  std::vector<Scalar> In = randomInput(R, Sim.inputTokensNeeded(1));
  auto FErr = checkScheduleAgainstReference(G, *SS, *Config, GSS,
                                            Sched->Schedule, In, 1);
  EXPECT_FALSE(FErr.has_value()) << *FErr;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraph,
                         ::testing::Range<uint64_t>(1, 25));
