//===- tests/random_graph_test.cpp - Randomized end-to-end properties -------===//
//
// Property tests over randomly generated stream programs: for every
// generated graph, the rate solver must balance it, the compiler must
// produce a verifier-clean schedule, and the software-pipelined
// functional execution must match the sequential reference bit for bit.
//
// The generator lives in src/testing/GraphGen.h (promoted from this file
// so `sgpu-fuzz` and the oracle suite share it); with default options its
// draw sequence is identical to the historical in-test generator, so the
// seeds below exercise the same graphs they always did.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "gpusim/FunctionalSim.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"
#include "sdf/RateSolver.h"
#include "support/Rng.h"
#include "testing/GraphGen.h"

#include <gtest/gtest.h>

using namespace sgpu;
using namespace sgpu::testing;

class RandomGraph : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraph, RatesBalanceAndGraphValidates) {
  StreamGraph G = buildGraph(generateGraphSpec(GetParam()));
  auto Err = G.validate();
  ASSERT_FALSE(Err.has_value()) << *Err;
  auto Reps = computeRepetitionVector(G);
  ASSERT_TRUE(Reps.has_value());
  EXPECT_TRUE(isBalanced(G, *Reps));
  EXPECT_FALSE(validateGraphRates(G).has_value());
}

TEST_P(RandomGraph, ScheduleVerifiesAndExecutesCorrectly) {
  GraphSpec Spec = generateGraphSpec(GetParam());
  StreamGraph G = buildGraph(Spec);

  const GpuArch Arch = GpuArch::geForce8800GTS512();
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  ASSERT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);

  SchedulerOptions SO;
  SO.Pmax = 4;
  SO.TimeBudgetSeconds = 0.25;
  auto Sched = scheduleSwp(G, *SS, *Config, GSS, SO);
  ASSERT_TRUE(Sched.has_value());
  auto VErr = verifySchedule(G, *SS, *Config, GSS, Sched->Schedule);
  ASSERT_FALSE(VErr.has_value()) << *VErr;

  // Keep the functional run small: skip graphs whose coarsened steady
  // state covers too many base firings to execute quickly.
  int64_t TotalBase = 0;
  for (int V = 0; V < G.numNodes(); ++V)
    TotalBase += GSS.Instances[V] * Config->Threads[V];
  if (TotalBase > 40000)
    GTEST_SKIP() << "functional run too large for a unit test";

  SwpFunctionalSim Sim(G, *SS, *Config, GSS, Sched->Schedule);
  Rng R(GetParam() ^ 0x7f4a7c15u);
  std::vector<Scalar> In =
      randomInput(R, TokenType::Int, Sim.inputTokensNeeded(1));
  auto FErr = checkScheduleAgainstReference(G, *SS, *Config, GSS,
                                            Sched->Schedule, In, 1);
  EXPECT_FALSE(FErr.has_value()) << *FErr;
}

// The generator promotion must not have changed what historical seeds
// produce: buildStream on the same spec is deterministic, and spec
// generation itself is a pure function of (seed, options).
TEST_P(RandomGraph, GenerationIsDeterministic) {
  GraphSpec A = generateGraphSpec(GetParam());
  GraphSpec B = generateGraphSpec(GetParam());
  EXPECT_EQ(describeSpec(A), describeSpec(B));
  StreamGraph GA = buildGraph(A);
  StreamGraph GB = buildGraph(B);
  ASSERT_EQ(GA.numNodes(), GB.numNodes());
  ASSERT_EQ(GA.numEdges(), GB.numEdges());
  auto RA = computeRepetitionVector(GA);
  auto RB = computeRepetitionVector(GB);
  ASSERT_TRUE(RA.has_value());
  ASSERT_TRUE(RB.has_value());
  EXPECT_EQ(*RA, *RB);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraph,
                         ::testing::Range<uint64_t>(1, 25));
