//===- tests/report_test.cpp - JSON writer and report export tests ----------===//

#include "core/ReportWriter.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

/// Crude structural validity: balanced braces/brackets outside strings.
bool balancedJson(const std::string &S) {
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I < S.size(); ++I) {
    char C = S[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{' || C == '[')
      ++Depth;
    else if (C == '}' || C == ']') {
      if (--Depth < 0)
        return false;
    }
  }
  return Depth == 0 && !InString;
}

} // namespace

TEST(JsonWriter, ObjectsArraysAndValues) {
  JsonWriter W;
  W.beginObject();
  W.writeString("name", "swp");
  W.writeInt("ii", 42);
  W.writeDouble("relax", 0.5);
  W.writeBool("ilp", true);
  W.beginArray("xs");
  W.writeInt(1);
  W.writeInt(2);
  W.endArray();
  W.beginObject("nested");
  W.endObject();
  W.endObject();
  EXPECT_EQ(W.str(),
            "{\"name\":\"swp\",\"ii\":42,\"relax\":0.5,\"ilp\":true,"
            "\"xs\":[1,2],\"nested\":{}}");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  JsonWriter W;
  W.beginObject();
  W.writeString("s", "a\"b\\c\nd\te");
  W.endObject();
  EXPECT_EQ(W.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter W;
  W.beginArray();
  W.endArray();
  EXPECT_EQ(W.str(), "[]");
}

TEST(ReportWriter, SerializesCompileReport) {
  StreamGraph G = makeFig4Graph();
  CompileOptions Options;
  Options.Sched.Pmax = 4;
  auto R = compileForGpu(G, Options);
  ASSERT_TRUE(R.has_value());

  std::string Json = reportToJson(G, *R);
  EXPECT_TRUE(balancedJson(Json)) << Json;
  EXPECT_NE(Json.find("\"strategy\":\"SWP\""), std::string::npos);
  EXPECT_NE(Json.find("\"final_ii\":"), std::string::npos);
  EXPECT_NE(Json.find("\"instances\":["), std::string::npos);
  EXPECT_NE(Json.find("\"speedup\":"), std::string::npos);
  EXPECT_NE(Json.find("\"A#0\""), std::string::npos)
      << "instance node names present";
  // One instance object per scheduled instance.
  size_t Count = 0;
  for (size_t P = Json.find("\"k\":"); P != std::string::npos;
       P = Json.find("\"k\":", P + 1))
    ++Count;
  EXPECT_EQ(Count, R->Schedule.Instances.size());
}
