//===- tests/schema_test.cpp - Kernel schema subsystem tests ----------------===//
//
// Covers the codegen/schema/ subsystem end to end: option spellings, the
// budgeted per-edge queue selection, the cost-model rebate (queue edges
// cost zero device transactions), the Auto compile-both-keep-faster
// policy, functional equivalence of the warp-specialized execution with
// queue-semantics validation on, and the diagnostics a corrupted
// assignment must produce instead of crashing.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "codegen/CudaEmitter.h"
#include "codegen/schema/SchemaSelect.h"
#include "core/Compiler.h"
#include "core/ReportWriter.h"
#include "gpusim/FunctionalSim.h"
#include "gpusim/cyclesim/Coalescer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

/// Pmax=1 pins every instance to SM 0, making every channel edge
/// structurally same-SM — the selection then exercises the budget and
/// eligibility rules rather than the placement accident of a wide run.
CompileOptions schemaOptions(SchemaMode M, int Pmax = 1) {
  CompileOptions O;
  O.Schema = M;
  O.Sched.Pmax = Pmax;
  O.Sched.TimeBudgetSeconds = 0.5;
  return O;
}

StreamGraph benchmarkGraph(const std::string &Name) {
  const bench::BenchmarkSpec *Spec = bench::findBenchmark(Name);
  EXPECT_NE(Spec, nullptr) << Name << " missing from the registry";
  StreamPtr S = Spec->Build();
  return flatten(*S);
}

std::vector<Scalar> intInput(int64_t N, uint64_t Seed = 1) {
  Rng R(Seed);
  std::vector<Scalar> V;
  for (int64_t I = 0; I < N; ++I)
    V.push_back(Scalar::makeInt(R.nextInt(100)));
  return V;
}

std::vector<Scalar> floatInput(int64_t N, uint64_t Seed = 2) {
  Rng R(Seed);
  std::vector<Scalar> V;
  for (int64_t I = 0; I < N; ++I)
    V.push_back(Scalar::makeFloat(R.nextFloat(2.0f)));
  return V;
}

} // namespace

TEST(Schema, OptionSpellingsRoundTrip) {
  for (SchemaMode M : {SchemaMode::Global, SchemaMode::Warp, SchemaMode::Auto}) {
    auto Parsed = parseSchemaMode(schemaModeName(M));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, M);
  }
  EXPECT_STREQ(schemaKindName(SchemaKind::GlobalChannel), "global");
  EXPECT_STREQ(schemaKindName(SchemaKind::WarpSpecialized), "warp");
  EXPECT_STREQ(edgeSchemaName(EdgeSchema::GlobalChannel), "global");
  EXPECT_STREQ(edgeSchemaName(EdgeSchema::SharedQueue), "queue");
  EXPECT_FALSE(parseSchemaMode("queues").has_value());
  EXPECT_FALSE(parseSchemaMode("").has_value());
}

TEST(Schema, GlobalRequestKeepsEveryEdgeGlobal) {
  StreamGraph G = makeScalePipeline();
  auto R = compileForGpu(G, schemaOptions(SchemaMode::Global));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->RequestedSchema, SchemaMode::Global);
  EXPECT_EQ(R->Schema.Kind, SchemaKind::GlobalChannel);
  EXPECT_EQ(R->Schema.numQueueEdges(), 0);
  EXPECT_EQ(R->Schema.SharedQueueBytes, 0);
  ASSERT_EQ(R->Schema.Edges.size(), static_cast<size_t>(G.numEdges()));
}

TEST(Schema, WarpSelectionIsDeterministicAndBudgeted) {
  StreamGraph G = benchmarkGraph("DCT");
  CompileOptions O = schemaOptions(SchemaMode::Warp, /*Pmax=*/4);
  auto A = compileForGpu(G, O);
  auto B = compileForGpu(G, O);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->Schema.Kind, SchemaKind::WarpSpecialized);
  EXPECT_EQ(A->Schema.Edges, B->Schema.Edges);
  EXPECT_EQ(A->Schema.QueueCapTokens, B->Schema.QueueCapTokens);
  EXPECT_EQ(A->Schema.SharedQueueBytes, B->Schema.SharedQueueBytes);

  const GpuArch Arch = GpuArch::geForce8800GTS512();
  EXPECT_LE(A->Schema.SharedQueueBytes,
            Arch.SharedMemPerSM - SchemaSharedReserveBytes);
  ASSERT_EQ(A->Schema.Edges.size(), static_cast<size_t>(G.numEdges()));
  ASSERT_EQ(A->Schema.QueueCapTokens.size(),
            static_cast<size_t>(G.numEdges()));
  for (int E = 0; E < G.numEdges(); ++E) {
    if (A->Schema.isQueue(E))
      EXPECT_GT(A->Schema.QueueCapTokens[E], 0) << "edge " << E;
    else
      EXPECT_EQ(A->Schema.QueueCapTokens[E], 0) << "edge " << E;
  }
}

TEST(Schema, ViaQueueStreamsCostZeroDeviceTransactions) {
  MemStream S;
  S.Count = 4;
  S.KeyRate = 4;
  S.Layout = LayoutKind::Shuffled;
  const int64_t Threads = 128;
  ASSERT_GT(streamTransactions(S, Threads), 0);
  ASSERT_GT(warpAccessTransactions(S, /*BaseThread=*/0, /*Lanes=*/32, 0), 0);
  S.ViaQueue = true;
  EXPECT_EQ(streamTransactions(S, Threads), 0);
  EXPECT_EQ(warpAccessTransactions(S, /*BaseThread=*/0, /*Lanes=*/32, 0), 0);
  S.IsWrite = true;
  EXPECT_EQ(streamTransactions(S, Threads), 0);
}

TEST(Schema, QueueEdgesCutDeviceTraffic) {
  StreamGraph GGlobal = makeDeepScalePipeline(6);
  auto Global = compileForGpu(GGlobal, schemaOptions(SchemaMode::Global));
  StreamGraph GWarp = makeDeepScalePipeline(6);
  auto Warp = compileForGpu(GWarp, schemaOptions(SchemaMode::Warp));
  ASSERT_TRUE(Global && Warp);
  // Pmax=1 on an init-free 1:1 pipeline: the selection must admit queue
  // edges, and every admitted edge removes its device transactions.
  ASSERT_GE(Warp->Schema.numQueueEdges(), 1);
  EXPECT_LT(Warp->KernelSim.Transactions, Global->KernelSim.Transactions);
  // Same schedule both times (the schema decision happens after
  // scheduling, never feeding back into II).
  EXPECT_EQ(Warp->Schedule.II, Global->Schedule.II);
}

TEST(Schema, AutoKeepsTheFasterSchema) {
  StreamGraph G1 = makeDeepScalePipeline(6);
  auto Global = compileForGpu(G1, schemaOptions(SchemaMode::Global));
  StreamGraph G2 = makeDeepScalePipeline(6);
  auto Warp = compileForGpu(G2, schemaOptions(SchemaMode::Warp));
  StreamGraph G3 = makeDeepScalePipeline(6);
  auto Auto = compileForGpu(G3, schemaOptions(SchemaMode::Auto));
  ASSERT_TRUE(Global && Warp && Auto);
  EXPECT_EQ(Auto->RequestedSchema, SchemaMode::Auto);
  const double Best = std::min(Global->KernelSim.TotalCycles,
                               Warp->KernelSim.TotalCycles);
  EXPECT_DOUBLE_EQ(Auto->KernelSim.TotalCycles, Best);
  if (Warp->KernelSim.TotalCycles < Global->KernelSim.TotalCycles)
    EXPECT_EQ(Auto->Schema.Kind, SchemaKind::WarpSpecialized);
  else
    EXPECT_EQ(Auto->Schema.Kind, SchemaKind::GlobalChannel);
}

TEST(Schema, WarpFunctionalRunMatchesReference) {
  StreamGraph G = makeDeepScalePipeline(6);
  auto R = compileForGpu(G, schemaOptions(SchemaMode::Warp));
  ASSERT_TRUE(R.has_value());
  ASSERT_GE(R->Schema.numQueueEdges(), 1);
  SwpFunctionalSim Sim(G, *SteadyState::compute(G), R->Config, R->GSS,
                       R->Schedule, &R->Schema);
  auto SS = SteadyState::compute(G);
  std::vector<Scalar> In = intInput(Sim.inputTokensNeeded(3));
  auto Err = checkScheduleAgainstReference(G, *SS, R->Config, R->GSS,
                                           R->Schedule, In, 3, &R->Schema);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

TEST(Schema, MultiRateWarpFunctionalRunMatchesReference) {
  StreamGraph G = makeFig4Graph();
  auto R = compileForGpu(G, schemaOptions(SchemaMode::Warp));
  ASSERT_TRUE(R.has_value());
  auto SS = SteadyState::compute(G);
  SwpFunctionalSim Sim(G, *SS, R->Config, R->GSS, R->Schedule, &R->Schema);
  std::vector<Scalar> In = intInput(Sim.inputTokensNeeded(2));
  auto Err = checkScheduleAgainstReference(G, *SS, R->Config, R->GSS,
                                           R->Schedule, In, 2, &R->Schema);
  EXPECT_FALSE(Err.has_value()) << *Err;
}

// A peeking edge can never be a shared ring (the slack tokens would need
// host pre-seeding); forcing one into the assignment must produce the
// eligibility diagnostic naming the edge and schema, not an assert.
TEST(Schema, IneligiblePeekEdgeIsDiagnosed) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeOffsetFloat("Off", 1.0)));
  Parts.push_back(filterStream(makeMovingSum("Sum", 4)));
  StreamGraph G = flatten(*pipelineStream(std::move(Parts)));
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  auto R = compileForGpu(G, schemaOptions(SchemaMode::Global));
  ASSERT_TRUE(R.has_value());

  int PeekEdge = -1;
  for (const ChannelEdge &E : G.edges())
    if (E.PeekRate != E.ConsRate || E.InitTokens != 0) {
      PeekEdge = E.Id;
      break;
    }
  ASSERT_GE(PeekEdge, 0) << "moving-sum pipeline lost its peeking edge";

  SchemaAssignment Tampered = R->Schema;
  Tampered.Kind = SchemaKind::WarpSpecialized;
  Tampered.Edges[PeekEdge] = EdgeSchema::SharedQueue;
  Tampered.QueueCapTokens[PeekEdge] = 64;

  SwpFunctionalSim Sim(G, *SS, R->Config, R->GSS, R->Schedule, &Tampered);
  std::vector<Scalar> In = floatInput(Sim.inputTokensNeeded(1));
  FunctionalRunResult Res = Sim.run(In, 1);
  ASSERT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("edge " + std::to_string(PeekEdge)),
            std::string::npos)
      << Res.Error;
  EXPECT_NE(Res.Error.find("schema 'queue'"), std::string::npos) << Res.Error;
}

TEST(Schema, ZeroCapacityQueueIsDiagnosed) {
  StreamGraph G = makeDeepScalePipeline(6);
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  auto R = compileForGpu(G, schemaOptions(SchemaMode::Warp));
  ASSERT_TRUE(R.has_value());
  ASSERT_GE(R->Schema.numQueueEdges(), 1);

  SchemaAssignment Tampered = R->Schema;
  int QueueEdge = -1;
  for (int E = 0; E < G.numEdges(); ++E)
    if (Tampered.isQueue(E)) {
      QueueEdge = E;
      break;
    }
  ASSERT_GE(QueueEdge, 0);
  Tampered.QueueCapTokens[QueueEdge] = 0;

  SwpFunctionalSim Sim(G, *SS, R->Config, R->GSS, R->Schedule, &Tampered);
  std::vector<Scalar> In = intInput(Sim.inputTokensNeeded(1));
  FunctionalRunResult Res = Sim.run(In, 1);
  ASSERT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("no ring capacity"), std::string::npos)
      << Res.Error;
  EXPECT_NE(Res.Error.find("edge " + std::to_string(QueueEdge)),
            std::string::npos)
      << Res.Error;
}

// Shrinking a backlogged ring below its stage-distance requirement must
// trip the invocation-boundary capacity check with the offending edge,
// the resident token count, and the declared capacity in the message.
TEST(Schema, UndersizedQueueIsDiagnosed) {
  // The greedy selection favours same-stage rings (the smallest per
  // byte), whose backlog drains within each invocation — an undersized
  // capacity there never shows at a boundary. To exercise the boundary
  // check, find an edge that is structurally ELIGIBLE for a queue but
  // whose consumer sits in a strictly later stage, and force it queued
  // with a 1-token ring: the cross-stage backlog cannot fit, and the
  // run must name the edge, the resident tokens, and the capacity.
  for (const char *Bench : {"Bitonic", "DCT", "FMRadio"}) {
    StreamGraph G = benchmarkGraph(Bench);
    auto SS = SteadyState::compute(G);
    ASSERT_TRUE(SS.has_value());
    auto R = compileForGpu(G, schemaOptions(SchemaMode::Warp, /*Pmax=*/4));
    if (!R)
      continue;

    int Backlogged = -1;
    for (const ChannelEdge &E : G.edges()) {
      if (E.InitTokens != 0 || E.PeekRate != E.ConsRate)
        continue;
      if (SS->initFirings()[E.Src] != 0 || SS->initFirings()[E.Dst] != 0)
        continue;
      int Sm = -1;
      bool Spread = false;
      int64_t MinSrcF = std::numeric_limits<int64_t>::max();
      int64_t MaxDstF = std::numeric_limits<int64_t>::min();
      for (const ScheduledInstance &SI : R->Schedule.Instances) {
        if (SI.Node != E.Src && SI.Node != E.Dst)
          continue;
        if (Sm < 0)
          Sm = SI.Sm;
        else if (SI.Sm != Sm)
          Spread = true;
        if (SI.Node == E.Src)
          MinSrcF = std::min(MinSrcF, SI.F);
        if (SI.Node == E.Dst)
          MaxDstF = std::max(MaxDstF, SI.F);
      }
      if (!Spread && MaxDstF > MinSrcF) {
        Backlogged = E.Id;
        break;
      }
    }
    if (Backlogged < 0)
      continue;

    SchemaAssignment Tampered = R->Schema;
    Tampered.Kind = SchemaKind::WarpSpecialized;
    Tampered.Edges[Backlogged] = EdgeSchema::SharedQueue;
    Tampered.QueueCapTokens[Backlogged] = 1;
    SwpFunctionalSim Sim(G, *SS, R->Config, R->GSS, R->Schedule, &Tampered);
    std::vector<Scalar> In = intInput(Sim.inputTokensNeeded(2));
    FunctionalRunResult Res = Sim.run(In, 2);
    ASSERT_FALSE(Res.Ok);
    EXPECT_NE(Res.Error.find("ring capacity"), std::string::npos)
        << Res.Error;
    EXPECT_NE(Res.Error.find("edge " + std::to_string(Backlogged)),
              std::string::npos)
        << Res.Error;
    return;
  }
  FAIL() << "no fixture produced an eligible cross-stage edge; the "
            "schedules or the fixtures changed";
}

TEST(Schema, ReportJsonCarriesTheDecision) {
  StreamGraph G = makeDeepScalePipeline(6);
  auto R = compileForGpu(G, schemaOptions(SchemaMode::Warp));
  ASSERT_TRUE(R.has_value());
  ASSERT_GE(R->Schema.numQueueEdges(), 1);
  std::string Json = reportToJson(G, *R);
  EXPECT_NE(Json.find("\"schema\""), std::string::npos);
  EXPECT_NE(Json.find("\"requested\":\"warp\""), std::string::npos);
  EXPECT_NE(Json.find("\"selected\":\"warp\""), std::string::npos);
  EXPECT_NE(Json.find("\"queue\""), std::string::npos);
}

// The warp emitter must render every queue-assigned edge as a shared
// ring with its selected capacity, and keep the software iteration
// barrier that separates pipeline iterations.
TEST(Schema, WarpEmitterRendersTheAssignment) {
  StreamGraph G = makeDeepScalePipeline(6);
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  auto R = compileForGpu(G, schemaOptions(SchemaMode::Warp));
  ASSERT_TRUE(R.has_value());
  ASSERT_GE(R->Schema.numQueueEdges(), 1);
  CudaEmitOptions EO;
  EO.Coarsening = R->Coarsening;
  std::string Src =
      createKernelSchema(SchemaKind::WarpSpecialized)
          ->emit(G, *SS, R->Config, R->GSS, R->Schedule, R->Schema, EO);
  EXPECT_NE(Src.find("q_wait"), std::string::npos);
  EXPECT_NE(Src.find("q_publish"), std::string::npos);
  EXPECT_NE(Src.find("__shared__"), std::string::npos);
  for (int E = 0; E < G.numEdges(); ++E)
    if (R->Schema.isQueue(E))
      EXPECT_NE(Src.find("q_e" + std::to_string(E)), std::string::npos)
          << "queue edge " << E << " missing its shared ring";
}
