//===- tests/sdf_test.cpp - Rates, schedules, dependences --------------------===//

#include "sdf/Admissibility.h"
#include "sdf/RateSolver.h"
#include "sdf/Schedules.h"
#include "sdf/SteadyState.h"
#include "support/MathExtras.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

TEST(RateSolver, UniformPipeline) {
  StreamGraph G = makeScalePipeline();
  auto Reps = computeRepetitionVector(G);
  ASSERT_TRUE(Reps.has_value());
  EXPECT_EQ(*Reps, (std::vector<int64_t>{1, 1, 1}));
  EXPECT_TRUE(isBalanced(G, *Reps));
}

TEST(RateSolver, MultiRatePipeline) {
  StreamGraph G = makeFig4Graph();
  auto Reps = computeRepetitionVector(G);
  ASSERT_TRUE(Reps.has_value());
  // A pushes 2, B pops 3: balance needs 3 A firings per 2 B firings.
  EXPECT_EQ(*Reps, (std::vector<int64_t>{3, 2}));
}

TEST(RateSolver, SplitJoinRates) {
  StreamGraph G = makeDupSplitGraph();
  auto Reps = computeRepetitionVector(G);
  ASSERT_TRUE(Reps.has_value());
  EXPECT_TRUE(isBalanced(G, *Reps));
  // The joiner pushes 2 per firing; Out pops 1 -> fires twice as often.
  for (const GraphNode &N : G.nodes()) {
    if (N.isFilter() && N.TheFilter->name() == "Out")
      EXPECT_EQ((*Reps)[N.Id], 2);
  }
}

TEST(RateSolver, PrimitiveVector) {
  StreamGraph G = makeFig4Graph();
  auto Reps = computeRepetitionVector(G);
  ASSERT_TRUE(Reps.has_value());
  int64_t Gcd = 0;
  for (int64_t K : *Reps)
    Gcd = gcd64(Gcd, K);
  EXPECT_EQ(Gcd, 1) << "repetition vector must be primitive";
}

TEST(RateSolver, RejectsUnbalancedGraph) {
  // A pushes 2 into a duplicate branch pair whose joins disagree:
  // branch L keeps rate 1:1, branch R decimates 2:1, joiner weights 1,1
  // force an inconsistency.
  FilterBuilder BL("L", TokenType::Int, TokenType::Int);
  BL.setRates(1, 1);
  BL.push(BL.pop());
  FilterBuilder BR("R", TokenType::Int, TokenType::Int);
  BR.setRates(2, 1);
  BR.push(BR.pop());
  BR.popDiscard();
  std::vector<StreamPtr> Branches;
  Branches.push_back(filterStream(BL.build()));
  Branches.push_back(filterStream(BR.build()));
  StreamGraph G =
      flatten(*duplicateSplitJoin(std::move(Branches), {1, 1}));
  EXPECT_FALSE(computeRepetitionVector(G).has_value());
}

TEST(SteadyState, InputOutputVolumes) {
  StreamGraph G = makeFig4Graph();
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  EXPECT_EQ(SS->inputTokensPerIteration(), 3);
  EXPECT_EQ(SS->outputTokensPerIteration(), 2);
  EXPECT_EQ(SS->tokensPerIteration(0), 6);
}

TEST(SteadyState, NoInitFiringsWithoutPeeking) {
  StreamGraph G = makeScalePipeline();
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  for (int64_t I : SS->initFirings())
    EXPECT_EQ(I, 0);
}

TEST(SteadyState, InitFiringsCoverPeekSlack) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeOffsetFloat("Pre", 1.0)));
  Parts.push_back(filterStream(makeMovingSum("MS", 8)));
  StreamGraph G = flatten(*pipelineStream(std::move(Parts)));
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  // The producer must pre-fill peek - pop = 7 tokens.
  EXPECT_EQ(SS->initFirings()[0], 7);
  EXPECT_EQ(SS->initFirings()[1], 0);
  // Input demand: init pops + steady pops + own slack.
  EXPECT_EQ(SS->inputTokensNeeded(4), 7 + 4);
}

TEST(Schedules, SingleAppearance) {
  StreamGraph G = makeFig4Graph();
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  auto SAS = buildSingleAppearanceSchedule(*SS);
  ASSERT_TRUE(SAS.has_value());
  ASSERT_EQ(SAS->Steps.size(), 2u);
  EXPECT_EQ(SAS->Steps[0].NodeId, 0);
  EXPECT_EQ(SAS->Steps[0].Count, 3);
  EXPECT_EQ(SAS->Steps[1].Count, 2);
  EXPECT_EQ(SAS->totalFirings(), 5);
}

TEST(Schedules, SasBuffersAreMaximal) {
  StreamGraph G = makeFig4Graph();
  auto SS = SteadyState::compute(G);
  auto SAS = buildSingleAppearanceSchedule(*SS);
  auto MinLat = buildMinLatencySchedule(*SS);
  ASSERT_TRUE(SAS && MinLat);
  auto OccSas = computeBufferOccupancy(*SS, *SAS);
  auto OccMin = computeBufferOccupancy(*SS, *MinLat);
  // The paper: SAS requires the maximum buffering of all steady
  // schedules; min-latency requires no more.
  for (int E = 0; E < G.numEdges(); ++E)
    EXPECT_LE(OccMin[E], OccSas[E]);
  EXPECT_EQ(OccSas[0], 6);
  EXPECT_EQ(totalBufferBytes(G, OccSas), 24);
}

TEST(Schedules, MinLatencyExecutesFully) {
  StreamGraph G = makeDupSplitGraph();
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  auto Min = buildMinLatencySchedule(*SS);
  ASSERT_TRUE(Min.has_value());
  int64_t Expect = 0;
  for (int V = 0; V < G.numNodes(); ++V)
    Expect += SS->repetitionsOf(V);
  EXPECT_EQ(Min->totalFirings(), Expect);
}

//===----------------------------------------------------------------------===//
// Instance dependences (paper Section III-C, Figure 4).
//===----------------------------------------------------------------------===//

TEST(InstanceDeps, Fig4Pattern) {
  // Edge A->B with O=2, I=3, m=0, ku=3 (A fires 3x), kv=2.
  // B0 needs tokens 1..3 -> producer firings ceil((l-2)/2), l=1..3:
  //   x in {0, 0, 1} -> A0 and A1, same iteration.
  auto D0 = computeInstanceDeps(3, 3, 2, 0, 3, 0);
  ASSERT_EQ(D0.size(), 2u);
  EXPECT_EQ(D0[0].KProd, 0);
  EXPECT_EQ(D0[0].JLag, 0);
  EXPECT_EQ(D0[1].KProd, 1);
  EXPECT_EQ(D0[1].JLag, 0);

  // B1 needs tokens 4..6 -> producer firings {1, 2, 2} -> A1 and A2.
  auto D1 = computeInstanceDeps(3, 3, 2, 0, 3, 1);
  ASSERT_EQ(D1.size(), 2u);
  EXPECT_EQ(D1[0].KProd, 1);
  EXPECT_EQ(D1[1].KProd, 2);
}

TEST(InstanceDeps, InitialTokensShiftIterations) {
  // Same edge with 6 initial tokens: one whole iteration of slack, so
  // every dependence reaches back at least one iteration.
  auto D = computeInstanceDeps(3, 3, 2, 6, 3, 0);
  ASSERT_FALSE(D.empty());
  for (const InstanceDep &X : D)
    EXPECT_LE(X.JLag, -1) << "covered by the previous iteration";
}

TEST(InstanceDeps, PartialInitialTokens) {
  // Three initial tokens cover iteration 0's first firing, which in the
  // steady state means every firing leans on the *previous* iteration.
  auto D = computeInstanceDeps(3, 3, 2, 3, 3, 0);
  ASSERT_FALSE(D.empty());
  for (const InstanceDep &X : D)
    EXPECT_EQ(X.JLag, -1);
}

TEST(InstanceDeps, DominatedLagsPruned) {
  // One producer instance (ku=1): only the most recent (largest) jlag
  // constraint survives per producer.
  auto D = computeInstanceDeps(1, 4, 1, 3, 1, 0);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D[0].KProd, 0);
  EXPECT_EQ(D[0].JLag, 0);
}

TEST(InstanceDeps, CountBound) {
  // The paper bounds distinct dependences per firing by floor(I/O) + 1;
  // initial tokens that straddle a producer-firing boundary add at most
  // one more (see Admissibility.cpp).
  for (int64_t I = 1; I <= 8; ++I)
    for (int64_t O = 1; O <= 8; ++O)
      for (int64_t M = 0; M <= 4; ++M) {
        int64_t Ku = std::max<int64_t>(1, I / gcd64(I, O));
        for (int64_t K = 0; K < 3; ++K) {
          auto D = computeInstanceDeps(I, I, O, M, Ku, K);
          EXPECT_LE(static_cast<int64_t>(D.size()), I / O + 2)
              << "I=" << I << " O=" << O << " M=" << M << " K=" << K;
        }
      }
}

TEST(InstanceDeps, PeekExtendsReach) {
  // pop 1, peek 4, producer pushes 2 (ku=1), with the post-init slack of
  // peek - pop = 3 tokens on the edge: the peeking consumer depends on
  // the *current* iteration's producer (lag 0) while a plain pop-1
  // consumer would be fully served two iterations back (lag -2).
  auto Peeky = computeInstanceDeps(1, 4, 2, 3, 1, 0);
  auto Plain = computeInstanceDeps(1, 1, 2, 3, 1, 0);
  ASSERT_EQ(Peeky.size(), 1u);
  ASSERT_EQ(Plain.size(), 1u);
  EXPECT_EQ(Peeky[0].JLag, 0);
  EXPECT_EQ(Plain[0].JLag, -2);
}

TEST(RecMII, ZeroForAcyclicGraphs) {
  StreamGraph G = makeFig4Graph();
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  EXPECT_DOUBLE_EQ(computeRecMII(*SS, {5.0, 7.0}), 0.0);
}

TEST(RecMII, FeedbackLoopBoundsII) {
  StreamPtr Loop = feedbackLoopStream(
      {1, 1}, filterStream(makeScaleInt("Body", 2)), {1, 1},
      filterStream(makeScaleInt("LoopId", 1)), /*InitTokens=*/1);
  StreamGraph G = flatten(*Loop);
  auto SS = SteadyState::compute(G);
  ASSERT_TRUE(SS.has_value());
  std::vector<double> Delay(G.numNodes(), 10.0);
  double R = computeRecMII(*SS, Delay);
  // The cycle joiner->body->splitter->loop->joiner carries one token:
  // RecMII >= sum of delays on the cycle / 1 distance.
  EXPECT_GT(R, 10.0);
}
