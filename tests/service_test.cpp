//===- tests/service_test.cpp - Scheduling-as-a-service tests ---------------===//
//
// Covers the sgpu-served stack bottom-up: the SHA-256 primitive, the
// content-addressed cache key (whitespace / rename / option-spelling
// invariance — the canonicalization regression suite), the two-tier
// ScheduleCache (LRU eviction, disk persistence, corrupt-entry
// recovery), the wire protocol, and the Service policies (coalescing of
// concurrent identical requests, admission-control shedding) without a
// socket in the loop.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "parser/Parser.h"
#include "service/GraphHash.h"
#include "service/Protocol.h"
#include "service/ScheduleCache.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Sha256.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

using namespace sgpu;
using namespace sgpu::service;

namespace {

namespace fs = std::filesystem;

/// A fresh empty directory under the test temp root.
std::string freshDir(const std::string &Name) {
  fs::path P = fs::path(::testing::TempDir()) / ("sgpu_service_" + Name);
  fs::remove_all(P);
  fs::create_directories(P);
  return P.string();
}

StreamGraph graphFromSource(const std::string &Src) {
  ParseDiagnostic Diag;
  StreamPtr S = parseStreamProgram(Src, &Diag);
  EXPECT_NE(S, nullptr) << Diag.str();
  StreamGraph G = flatten(*S);
  EXPECT_FALSE(G.validate().has_value());
  return G;
}

/// A small two-filter pipeline; the \p Scale parameter perturbs a body
/// constant so tests can mint distinct programs cheaply.
std::string tinyProgram(int Scale = 2) {
  return "pipeline P {\n"
         "  filter A(int -> int, pop 1, push 1) { push(pop() * " +
         std::to_string(Scale) +
         "); }\n"
         "  filter B(int -> int, pop 1, push 1) { push(pop() + 1); }\n"
         "}\n";
}

} // namespace

//===----------------------------------------------------------------------===//
// Sha256
//===----------------------------------------------------------------------===//

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(
      sha256Hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256Hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // One million 'a': exercises many compression rounds and the buffered
  // update path.
  EXPECT_EQ(
      sha256Hex(std::string(1000000, 'a')),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string Msg =
      "the quick brown fox jumps over the lazy dog, repeatedly, until the "
      "message spans several compression blocks of the hash function";
  Sha256 H;
  for (size_t I = 0; I < Msg.size(); I += 7)
    H.update(std::string_view(Msg).substr(I, 7));
  EXPECT_EQ(H.digestHex(), sha256Hex(Msg));
}

//===----------------------------------------------------------------------===//
// GraphHash: canonicalization invariants
//===----------------------------------------------------------------------===//

TEST(GraphHash, WhitespaceAndCommentsDoNotChangeTheKey) {
  StreamGraph A = graphFromSource(tinyProgram());
  StreamGraph B = graphFromSource(
      "  pipeline   P {  // a comment\n"
      "filter A(int->int, pop 1, push 1)\n"
      "{\n  push( pop( ) * 2 ) ;\n}\n"
      "  /* another comment */\n"
      "filter B(int->int,pop 1,push 1){ push(pop()+1); } }\n");
  CompileOptions Opts;
  EXPECT_EQ(graphHash(A, Opts), graphHash(B, Opts));
}

TEST(GraphHash, FilterRenamesDoNotChangeTheKey) {
  StreamGraph A = graphFromSource(tinyProgram());
  StreamGraph B = graphFromSource(
      "pipeline Completely {\n"
      "  filter Different(int -> int, pop 1, push 1) { push(pop() * 2); }\n"
      "  filter Names(int -> int, pop 1, push 1) { push(pop() + 1); }\n"
      "}\n");
  CompileOptions Opts;
  EXPECT_EQ(graphHash(A, Opts), graphHash(B, Opts));
}

TEST(GraphHash, RatesAndBodiesChangeTheKey) {
  CompileOptions Opts;
  StreamGraph Base = graphFromSource(tinyProgram());
  const std::string BaseKey = graphHash(Base, Opts);

  // A different body constant is a different program...
  StreamGraph OtherBody = graphFromSource(tinyProgram(/*Scale=*/3));
  EXPECT_NE(graphHash(OtherBody, Opts), BaseKey);

  // ... and so is a different rate signature.
  StreamGraph OtherRates = graphFromSource(
      "pipeline P {\n"
      "  filter A(int -> int, pop 2, push 2) "
      "{ push(pop() * 2); push(pop() * 2); }\n"
      "  filter B(int -> int, pop 1, push 1) { push(pop() + 1); }\n"
      "}\n");
  EXPECT_NE(graphHash(OtherRates, Opts), BaseKey);
}

TEST(GraphHash, ExecutionKnobsAreExcludedSemanticOptionsIncluded) {
  StreamGraph G = graphFromSource(tinyProgram());

  CompileOptions A, B;
  A.Sched.NumWorkers = 1;
  A.Sched.IIWindow = 1;
  B.Sched.NumWorkers = 8;
  B.Sched.IIWindow = 4;
  EXPECT_EQ(graphHash(G, A), graphHash(G, B))
      << "worker count is determinism-invariant and must not split the key";

  CompileOptions C;
  C.Coarsening = 4;
  EXPECT_NE(graphHash(G, A), graphHash(G, C));

  CompileOptions D;
  D.Strat = Strategy::Serial;
  EXPECT_NE(graphHash(G, A), graphHash(G, D));

  CompileOptions E;
  E.Arch.NumSMs = 4;
  EXPECT_NE(graphHash(G, A), graphHash(G, E))
      << "the machine model is part of the key";
}

// Canonical form v3 added the `schema=` line. The schema mode must split
// the key space, and every v2-era envelope (same payload, no schema
// line, "v2" header) must miss cleanly against a v3-populated cache —
// a stale warp-less entry aliasing a warp compile would hand back the
// wrong schedule report.
TEST(GraphHash, SchemaModeSplitsTheKeyAndV2EnvelopesInvalidate) {
  StreamGraph G = graphFromSource(tinyProgram());

  CompileOptions Global;
  CompileOptions Warp;
  Warp.Schema = SchemaMode::Warp;
  CompileOptions Auto;
  Auto.Schema = SchemaMode::Auto;
  EXPECT_NE(graphHash(G, Global), graphHash(G, Warp));
  EXPECT_NE(graphHash(G, Global), graphHash(G, Auto));
  EXPECT_NE(graphHash(G, Warp), graphHash(G, Auto));

  // The canonical options carry the new line for every mode (including
  // the default — an absent line would make global hash like v2).
  EXPECT_NE(canonicalizeOptions(Global).find("schema=global\n"),
            std::string::npos);
  EXPECT_NE(canonicalizeOptions(Warp).find("schema=warp\n"),
            std::string::npos);

  // Reconstruct the v2 envelope of the same request: the v2 canonical
  // payload is today's minus the schema line, hashed under the old
  // version header.
  std::string V2Options = canonicalizeOptions(Global);
  const size_t Line = V2Options.find("schema=global\n");
  ASSERT_NE(Line, std::string::npos);
  V2Options.erase(Line, std::string("schema=global\n").size());
  Sha256 V2;
  V2.update("sgpu-canon v2\n");
  V2.update(canonicalizeGraph(G));
  V2.update(V2Options);
  const std::string V2Key = V2.digestHex();
  const std::string V3Key = graphHash(G, Global);
  EXPECT_NE(V2Key, V3Key);

  // End to end: a cache freshly populated under v3 keys must miss for
  // the v2 key — the old entry is unreachable, never silently reused.
  ScheduleCache C({/*MaxBytes=*/1 << 20, /*Dir=*/""});
  C.insert(V3Key, "v3-schedule-report");
  EXPECT_TRUE(C.lookup(V3Key).has_value());
  EXPECT_FALSE(C.lookup(V2Key).has_value())
      << "a v2-era envelope aliased a v3 entry";
}

TEST(GraphHash, OptionSpellingsCanonicalizeThroughTheCliParser) {
  // The CLI and the protocol share parseStrategyName, so case variants
  // resolve to the same Strategy before any canonicalization happens.
  EXPECT_EQ(parseStrategyName("SWP"), parseStrategyName("swp"));
  EXPECT_EQ(parseStrategyName("Serial"), Strategy::Serial);
  // "sas" is the paper's name for the serial assignment baseline.
  EXPECT_EQ(parseStrategyName("sas"), Strategy::Serial);
  EXPECT_FALSE(parseStrategyName("swizzle").has_value());

  std::string Err;
  std::optional<CompileRequest> R1 = parseCompileRequest(
      R"({"source":"x","options":{"strategy":"SWP"}})", &Err);
  std::optional<CompileRequest> R2 = parseCompileRequest(
      R"({"source":"x","options":{"strategy":"swp"}})", &Err);
  ASSERT_TRUE(R1 && R2);
  EXPECT_EQ(canonicalizeOptions(R1->Options), canonicalizeOptions(R2->Options));
}

//===----------------------------------------------------------------------===//
// ScheduleCache
//===----------------------------------------------------------------------===//

TEST(ScheduleCache, MemoryHitAndMiss) {
  ScheduleCache C({/*MaxBytes=*/1 << 20, /*Dir=*/""});
  EXPECT_FALSE(C.lookup("k1").has_value());
  C.insert("k1", "v1");
  ASSERT_TRUE(C.lookup("k1").has_value());
  EXPECT_EQ(*C.lookup("k1"), "v1");
  EXPECT_EQ(C.stats().MemHits, 2);
  EXPECT_EQ(C.stats().Misses, 1);
  EXPECT_EQ(C.entryCount(), 1);
}

TEST(ScheduleCache, ByteBudgetEvictsLeastRecentlyUsed) {
  ScheduleCache C({/*MaxBytes=*/100, /*Dir=*/""});
  C.insert("a", std::string(60, 'A'));
  C.insert("b", std::string(60, 'B'));
  // 120 bytes > 100: "a" (LRU) must have been evicted.
  EXPECT_FALSE(C.lookup("a").has_value());
  EXPECT_TRUE(C.lookup("b").has_value());
  EXPECT_EQ(C.stats().Evictions, 1);
  EXPECT_LE(C.sizeBytes(), 100);

  // Touching an entry protects it: refresh "b", insert "c", then "b"
  // must survive over... (with two 60-byte values only one fits, and it
  // is the most recent).
  C.insert("c", std::string(60, 'C'));
  EXPECT_FALSE(C.lookup("b").has_value());
  EXPECT_TRUE(C.lookup("c").has_value());
}

TEST(ScheduleCache, OversizedValueIsStillCached) {
  ScheduleCache C({/*MaxBytes=*/10, /*Dir=*/""});
  C.insert("big", std::string(1000, 'x'));
  EXPECT_TRUE(C.lookup("big").has_value())
      << "the budget is a high-water mark, not a hard refusal";
  EXPECT_EQ(C.entryCount(), 1);
}

TEST(ScheduleCache, DiskPersistenceSurvivesRestartAndDropMemory) {
  const std::string Dir = freshDir("persist");
  const std::string Key(64, 'a');
  {
    ScheduleCache C({/*MaxBytes=*/1 << 20, Dir});
    C.insert(Key, "{\"ii\":42}");

    // Same instance, memory dropped: the disk tier serves it back.
    C.dropMemory();
    ASSERT_TRUE(C.lookup(Key).has_value());
    EXPECT_EQ(*C.lookup(Key), "{\"ii\":42}");
    EXPECT_EQ(C.stats().DiskHits, 1);
    EXPECT_EQ(C.stats().MemHits, 1); // The re-lookup after promotion.
  }
  // A fresh cache over the same directory (daemon restart).
  ScheduleCache C2({/*MaxBytes=*/1 << 20, Dir});
  ASSERT_TRUE(C2.lookup(Key).has_value());
  EXPECT_EQ(*C2.lookup(Key), "{\"ii\":42}");
  EXPECT_EQ(C2.stats().DiskHits, 1);
}

TEST(ScheduleCache, CorruptEntriesAreDeletedAndMissed) {
  const std::string Dir = freshDir("corrupt");
  ScheduleCache C({/*MaxBytes=*/1 << 20, Dir});
  const std::string Key(64, 'b');
  C.insert(Key, "payload");
  C.dropMemory();

  // Truncate/garble the on-disk entry.
  const std::string Path = C.entryPath(Key);
  ASSERT_TRUE(fs::exists(Path));
  std::ofstream(Path, std::ios::trunc) << "{not json";

  EXPECT_FALSE(C.lookup(Key).has_value());
  EXPECT_EQ(C.stats().Corrupt, 1);
  EXPECT_FALSE(fs::exists(Path)) << "corrupt entries are deleted";

  // A re-insert repairs the entry.
  C.insert(Key, "payload2");
  C.dropMemory();
  ASSERT_TRUE(C.lookup(Key).has_value());
  EXPECT_EQ(*C.lookup(Key), "payload2");
}

TEST(ScheduleCache, SchemaVersionAndKeyMismatchInvalidate) {
  const std::string Dir = freshDir("schema");
  ScheduleCache C({/*MaxBytes=*/1 << 20, Dir});
  const std::string Key(64, 'c');

  // Hand-write an envelope with a future schema version.
  {
    JsonWriter W;
    W.beginObject();
    W.writeInt("schema", kCacheSchemaVersion + 1);
    W.writeString("key", Key);
    W.writeString("report_text", "{}");
    W.endObject();
    fs::create_directories(Dir);
    std::ofstream(C.entryPath(Key), std::ios::trunc) << W.str();
  }
  EXPECT_FALSE(C.lookup(Key).has_value());
  EXPECT_EQ(C.stats().Corrupt, 1);

  // An entry whose embedded key disagrees with its filename (renamed or
  // swapped file) is equally invalid.
  {
    JsonWriter W;
    W.beginObject();
    W.writeInt("schema", kCacheSchemaVersion);
    W.writeString("key", std::string(64, 'd'));
    W.writeString("report_text", "{}");
    W.endObject();
    std::ofstream(C.entryPath(Key), std::ios::trunc) << W.str();
  }
  EXPECT_FALSE(C.lookup(Key).has_value());
  EXPECT_EQ(C.stats().Corrupt, 2);
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RejectsMalformedRequests) {
  std::string Err;
  EXPECT_FALSE(parseCompileRequest("not json", &Err).has_value());
  EXPECT_FALSE(parseCompileRequest("[1,2]", &Err).has_value());
  // Exactly one of benchmark/source.
  EXPECT_FALSE(parseCompileRequest("{}", &Err).has_value());
  EXPECT_FALSE(parseCompileRequest(
                   R"({"benchmark":"DES","source":"x"})", &Err)
                   .has_value());
  // Unknown option keys are errors, not silent defaults.
  EXPECT_FALSE(parseCompileRequest(
                   R"({"source":"x","options":{"coarsning":8}})", &Err)
                   .has_value());
  EXPECT_NE(Err.find("coarsning"), std::string::npos);
  // Unknown enum values too.
  EXPECT_FALSE(parseCompileRequest(
                   R"({"source":"x","options":{"strategy":"warp"}})", &Err)
                   .has_value());
}

TEST(Protocol, ParsesOptionsAndFlags) {
  std::string Err;
  std::optional<CompileRequest> R = parseCompileRequest(
      R"({"id":"q7","benchmark":"DES","no_cache":true,)"
      R"("options":{"coarsening":4,"sms":2,"timing_model":"cycle",)"
      R"("schema":"auto"}})",
      &Err);
  ASSERT_TRUE(R.has_value()) << Err;
  EXPECT_EQ(R->Id, "q7");
  EXPECT_EQ(R->Benchmark, "DES");
  EXPECT_TRUE(R->NoCache);
  EXPECT_EQ(R->Options.Coarsening, 4);
  EXPECT_EQ(R->Options.Sched.Pmax, 2);
  EXPECT_EQ(R->Options.Timing, TimingModelKind::Cycle);
  EXPECT_EQ(R->Options.Schema, SchemaMode::Auto);

  // Unknown schema spellings are rejected like every other enum.
  EXPECT_FALSE(parseCompileRequest(
                   R"({"source":"x","options":{"schema":"queues"}})", &Err)
                   .has_value());
  EXPECT_NE(Err.find("queues"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Service: end-to-end over handleLine (no socket)
//===----------------------------------------------------------------------===//

namespace {

/// Parses a response frame and returns its "status".
std::string responseStatus(const std::string &Frame) {
  std::optional<JsonValue> Doc = JsonValue::parse(Frame);
  if (!Doc || !Doc->isObject())
    return "<unparseable>";
  const JsonValue *S = Doc->find("status");
  return S && S->isString() ? S->asString() : "<missing>";
}

std::string requestFor(const std::string &Source) {
  return R"({"source":")" + JsonWriter::escape(Source) + R"("})";
}

} // namespace

TEST(Service, CacheHitRoundTripAndEquivalentSourcesHit) {
  ServiceOptions O;
  O.Cache.Dir = freshDir("svc_roundtrip");
  O.Workers = 1;
  Service Svc(O);

  std::string R1 = Svc.handleLine(requestFor(tinyProgram()));
  std::optional<JsonValue> D1 = JsonValue::parse(R1);
  ASSERT_TRUE(D1) << R1;
  EXPECT_EQ(responseStatus(R1), "ok");
  EXPECT_EQ(D1->find("cache")->asString(), "miss");
  const std::string Key = D1->find("key")->asString();
  ASSERT_TRUE(D1->find("report")->isObject());

  // The identical request hits.
  std::string R2 = Svc.handleLine(requestFor(tinyProgram()));
  std::optional<JsonValue> D2 = JsonValue::parse(R2);
  EXPECT_EQ(D2->find("cache")->asString(), "hit");
  EXPECT_EQ(D2->find("key")->asString(), Key);

  // A reformatted, renamed — but semantically identical — program hits
  // the same entry (the canonicalization regression, end to end).
  std::string R3 = Svc.handleLine(requestFor(
      "pipeline Renamed {\n"
      "  filter First (int->int, pop 1, push 1) { push( pop() * 2 ); }\n"
      "  filter Second(int->int, pop 1, push 1) { push( pop() + 1 ); }\n"
      "}\n"));
  std::optional<JsonValue> D3 = JsonValue::parse(R3);
  EXPECT_EQ(D3->find("cache")->asString(), "hit");
  EXPECT_EQ(D3->find("key")->asString(), Key);

  // no_cache bypasses lookup but still answers.
  std::string R4 = Svc.handleLine(
      R"({"no_cache":true,"source":")" + JsonWriter::escape(tinyProgram()) +
      R"("})");
  std::optional<JsonValue> D4 = JsonValue::parse(R4);
  EXPECT_EQ(responseStatus(R4), "ok");
  EXPECT_EQ(D4->find("cache")->asString(), "miss");
}

TEST(Service, ErrorResponses) {
  ServiceOptions O;
  O.Workers = 1;
  Service Svc(O);

  EXPECT_EQ(responseStatus(Svc.handleLine("garbage")), "error");
  EXPECT_EQ(responseStatus(Svc.handleLine(R"({"benchmark":"NoSuch"})")),
            "error");
  EXPECT_EQ(responseStatus(
                Svc.handleLine(R"({"source":"filter F(int"})")),
            "error");
}

TEST(Service, CorruptDiskEntryIsResolvedByResolving) {
  ServiceOptions O;
  O.Cache.Dir = freshDir("svc_corrupt");
  O.Workers = 1;
  Service Svc(O);

  std::string R1 = Svc.handleLine(requestFor(tinyProgram()));
  ASSERT_EQ(responseStatus(R1), "ok");
  const std::string Key = JsonValue::parse(R1)->find("key")->asString();

  // Garble the persisted entry and drop the memory tier: the next
  // request must fall through to a fresh solve, not fail.
  std::ofstream(Svc.cache().entryPath(Key), std::ios::trunc) << "XXX";
  Svc.cache().dropMemory();

  std::string R2 = Svc.handleLine(requestFor(tinyProgram()));
  std::optional<JsonValue> D2 = JsonValue::parse(R2);
  EXPECT_EQ(responseStatus(R2), "ok");
  EXPECT_EQ(D2->find("cache")->asString(), "miss");

  // And the entry is repaired on disk: a third request hits again.
  Svc.cache().dropMemory();
  std::string R3 = Svc.handleLine(requestFor(tinyProgram()));
  EXPECT_EQ(JsonValue::parse(R3)->find("cache")->asString(), "hit");
}

TEST(Service, CoalescingAndAdmissionControl) {
  // One compile worker, two admission slots. A slow blocker (Bitonic
  // with a bounded solver budget) occupies the worker; a second unique
  // request becomes a queued leader; an identical third coalesces onto
  // it; a fourth unique request finds both slots taken and is shed.
  ServiceOptions O;
  O.Workers = 1;
  O.MaxQueue = 2;
  O.RetryAfterMs = 123;
  Service Svc(O);

  MetricsRegistry::Snapshot Before = MetricsRegistry::global().snapshot();

  std::string BlockerResp;
  std::thread Blocker([&] {
    BlockerResp = Svc.handleLine(
        R"({"benchmark":"Bitonic","options":{"time_budget_s":2}})");
  });
  while (Svc.pendingSolves() < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Leader for the tiny program: queued behind the blocker.
  std::string LeaderResp;
  std::thread Leader(
      [&] { LeaderResp = Svc.handleLine(requestFor(tinyProgram())); });
  while (Svc.pendingSolves() < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Identical request: coalesces onto the leader's in-flight solve
  // (its key is in the in-flight map until the solve finishes, which
  // cannot happen while the blocker owns the only worker).
  std::string FollowerResp;
  std::thread Follower(
      [&] { FollowerResp = Svc.handleLine(requestFor(tinyProgram())); });

  // A unique request while both admission slots are taken: shed.
  std::string ShedResp = Svc.handleLine(requestFor(tinyProgram(/*Scale=*/5)));
  std::optional<JsonValue> ShedDoc = JsonValue::parse(ShedResp);
  EXPECT_EQ(responseStatus(ShedResp), "busy");
  EXPECT_EQ(static_cast<int>(ShedDoc->find("retry_after_ms")->asNumber()),
            123);

  Blocker.join();
  Leader.join();
  Follower.join();

  EXPECT_EQ(responseStatus(BlockerResp), "ok");
  EXPECT_EQ(responseStatus(LeaderResp), "ok");
  EXPECT_EQ(responseStatus(FollowerResp), "ok");
  std::optional<JsonValue> FollowerDoc = JsonValue::parse(FollowerResp);
  const JsonValue *Coalesced = FollowerDoc->find("coalesced");
  ASSERT_NE(Coalesced, nullptr);
  EXPECT_TRUE(Coalesced->asBool());

  // Follower and leader return byte-identical reports: one solve served
  // both.
  std::optional<JsonValue> LeaderDoc = JsonValue::parse(LeaderResp);
  EXPECT_EQ(LeaderDoc->find("key")->asString(),
            FollowerDoc->find("key")->asString());

  MetricsRegistry::Snapshot After = MetricsRegistry::global().snapshot();
  auto Delta = [&](const char *Name) {
    return After.Counters[Name] - Before.Counters[Name];
  };
  EXPECT_EQ(Delta("service.solves"), 2) << "blocker + one coalesced solve";
  EXPECT_EQ(Delta("service.coalesced"), 1);
  EXPECT_EQ(Delta("service.shed"), 1);
  EXPECT_EQ(Delta("service.requests"), 4);
}
