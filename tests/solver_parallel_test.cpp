//===- tests/solver_parallel_test.cpp - Parallel engine determinism ---------===//
//
// Covers the parallel scheduling engine end to end: the ThreadPool /
// parallelFor primitives, determinism of the multithreaded branch &
// bound against the single-threaded search on ILPs built from the seed
// test graphs, the speculative-II window committing the same FinalII as
// the serial loop, and the parallel profiling sweep producing a table
// identical to the serial one.
//
//===----------------------------------------------------------------------===//

#include "core/IlpScheduler.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

struct Prepared {
  StreamGraph G;
  SteadyState SS;
  ExecutionConfig Config;
  GpuSteadyState GSS;
};

Prepared prepare(StreamGraph G) {
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  EXPECT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);
  return {std::move(G), std::move(*SS), std::move(*Config), GSS};
}

} // namespace

//===----------------------------------------------------------------------===//
// ThreadPool primitives
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4);
  std::atomic<int> Sum{0};
  for (int I = 1; I <= 100; ++I)
    Pool.submit([&Sum, I] { Sum += I; });
  Pool.wait();
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPool, WaitIsReusableBarrier) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Round = 0; Round < 3; ++Round) {
    for (int I = 0; I < 10; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Round + 1) * 10);
  }
}

TEST(ThreadPool, ResolveWorkerCountPrecedence) {
  // Explicit request always wins and the result is always positive.
  EXPECT_EQ(resolveWorkerCount(3), 3);
  EXPECT_EQ(resolveWorkerCount(1), 1);
  EXPECT_GE(resolveWorkerCount(0), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  for (int Jobs : {1, 2, 4}) {
    std::vector<std::atomic<int>> Hits(257);
    for (auto &H : Hits)
      H = 0;
    parallelFor(0, 257, Jobs, [&](int I) { ++Hits[I]; });
    for (int I = 0; I < 257; ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << " jobs " << Jobs;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  std::atomic<int> Calls{0};
  parallelFor(5, 5, 4, [&](int) { ++Calls; });
  parallelFor(7, 3, 4, [&](int) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
}

//===----------------------------------------------------------------------===//
// Parallel B&B determinism on scheduling ILPs from the seed graphs
//===----------------------------------------------------------------------===//

namespace {

/// Builds the paper's SWP ILP for \p G at a comfortably feasible II and
/// solves it to proven optimality serially and with 4 workers; the
/// optimal objective is unique, so exhaustive searches must agree
/// exactly. (StopAtFirstFeasible is intentionally off: first-feasible
/// semantics are first-found by design and therefore racy in parallel.)
void expectParallelMatchesSerialOnGraph(StreamGraph G, int Pmax) {
  Prepared P = prepare(std::move(G));
  double T = 2.0 * computeResMII(P.Config, P.GSS, Pmax);
  auto M = buildSwpIlp(P.G, P.SS, P.Config, P.GSS, Pmax, T, 16);
  ASSERT_TRUE(M.has_value());

  MilpOptions Serial;
  Serial.TimeBudgetSeconds = 60.0;
  Serial.StopAtFirstFeasible = false;
  Serial.NumWorkers = 1;
  MilpResult S = solveMilp(M->LP, Serial);
  EXPECT_EQ(S.Outcome, MilpResult::Status::Optimal)
      << "exhaustive search truncated; determinism not guaranteed";

  MilpOptions Par = Serial;
  Par.NumWorkers = 4;
  MilpResult Q = solveMilp(M->LP, Par);

  EXPECT_EQ(S.hasSolution(), Q.hasSolution());
  ASSERT_TRUE(S.hasSolution());
  EXPECT_NEAR(S.Objective, Q.Objective, 1e-9);
  // Both solutions must decode to verifiable schedules.
  for (const MilpResult *R : {&S, &Q}) {
    SwpSchedule Sched = M->decode(R->X);
    auto Err = verifySchedule(P.G, P.SS, P.Config, P.GSS, Sched);
    EXPECT_FALSE(Err.has_value()) << *Err;
  }
}

} // namespace

TEST(ParallelBnb, MatchesSerialOnScalePipeline) {
  expectParallelMatchesSerialOnGraph(makeScalePipeline(), 2);
}

TEST(ParallelBnb, MatchesSerialOnFig4Graph) {
  expectParallelMatchesSerialOnGraph(makeFig4Graph(), 4);
}

TEST(ParallelBnb, MatchesSerialOnDupSplitGraph) {
  expectParallelMatchesSerialOnGraph(makeDupSplitGraph(), 4);
}

//===----------------------------------------------------------------------===//
// Speculative II window
//===----------------------------------------------------------------------===//

TEST(SpeculativeII, ParallelSearchCommitsSameII) {
  for (auto Make : {&makeScalePipeline, &makeFig4Graph,
                    &makeDupSplitGraph}) {
    Prepared P = prepare(Make());
    SchedulerOptions Serial;
    Serial.Pmax = 4;
    Serial.NumWorkers = 1;
    Serial.IIWindow = 1;
    auto S = scheduleSwp(P.G, P.SS, P.Config, P.GSS, Serial);
    ASSERT_TRUE(S.has_value());

    SchedulerOptions Par = Serial;
    Par.NumWorkers = 4;
    Par.IIWindow = 4;
    auto Q = scheduleSwp(P.G, P.SS, P.Config, P.GSS, Par);
    ASSERT_TRUE(Q.has_value());

    EXPECT_NEAR(Q->FinalII, S->FinalII, 1e-9);
    EXPECT_EQ(Q->IIAttempts, S->IIAttempts);
    auto Err = verifySchedule(P.G, P.SS, P.Config, P.GSS, Q->Schedule);
    EXPECT_FALSE(Err.has_value()) << *Err;
  }
}

TEST(SpeculativeII, TelemetryIsPopulated) {
  Prepared P = prepare(makeFig4Graph());
  SchedulerOptions SO;
  SO.Pmax = 4;
  SO.NumWorkers = 2;
  auto R = scheduleSwp(P.G, P.SS, P.Config, P.GSS, SO);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->WorkersUsed, 2);
  EXPECT_EQ(static_cast<int>(R->IIWallSeconds.size()), R->IIAttempts);
  for (double W : R->IIWallSeconds)
    EXPECT_GE(W, 0.0);
}

//===----------------------------------------------------------------------===//
// Parallel profiling sweep
//===----------------------------------------------------------------------===//

TEST(ParallelProfiler, TableIdenticalToSerial) {
  StreamGraph G = makeDupSplitGraph();
  ProfileTable Serial = profileGraph(Arch, G, LayoutKind::Shuffled, 1);
  for (int Jobs : {2, 4}) {
    ProfileTable Par = profileGraph(Arch, G, LayoutKind::Shuffled, Jobs);
    ASSERT_EQ(Par.numNodes(), Serial.numNodes());
    for (int N = 0; N < Serial.numNodes(); ++N)
      for (int R = 0; R < ProfileTable::NumRegLimits; ++R)
        for (int T = 0; T < ProfileTable::NumThreadCounts; ++T)
          EXPECT_EQ(Par.at(N, R, T), Serial.at(N, R, T))
              << "cell (" << N << "," << R << "," << T << ") jobs "
              << Jobs;
  }
}

TEST(ParallelProfiler, PartialWaveUsesCeilingDivision) {
  // 1537 firings with 512 threads is 4 waves (ceil), not 3 (trunc);
  // with 128 threads it is 13 waves. The run-time ratio of the two
  // configurations must reflect the extra partial wave.
  StreamGraph G = makeScalePipeline();
  ProfileTable Exact = profileGraph(Arch, G, LayoutKind::Shuffled, 1,
                                    /*NumFirings=*/1536);
  ProfileTable Partial = profileGraph(Arch, G, LayoutKind::Shuffled, 1,
                                      /*NumFirings=*/1537);
  // Find a feasible (reg, thread) cell for node 0 at 512 threads
  // (index 3 of {128, 256, 384, 512}).
  for (int R = 0; R < ProfileTable::NumRegLimits; ++R) {
    double E = Exact.at(0, R, 3);
    double P = Partial.at(0, R, 3);
    if (E == ProfileTable::Infeasible)
      continue;
    // 1536/512 = 3 waves exactly; 1537 firings must cost a 4th wave.
    double Launch = static_cast<double>(Arch.KernelLaunchCycles);
    double PerWave = (E - Launch) / 3.0;
    EXPECT_NEAR(P - Launch, 4.0 * PerWave, 1e-6);
  }
}
