//===- tests/stateful_test.cpp - Stateful filter extension tests ------------===//
//
// The paper restricts itself to stateless filters and lists stateful
// handling as future work (Section VII). Our extension: stateful filters
// are first-class in the IR and the interpreters, and the GPU compiler
// rejects them with the paper's restriction.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "ir/Interpreter.h"

#include <gtest/gtest.h>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

/// Running-sum accumulator: out[i] = sum of inputs 0..i. Stateful.
FilterPtr makeAccumulator() {
  FilterBuilder B("Accumulator", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const VarDecl *Acc = B.stateScalarI("acc", 0);
  B.assign(Acc, B.add(B.ref(Acc), B.pop()));
  B.push(B.ref(Acc));
  return B.build();
}

/// First-order IIR low-pass: y = a*y + (1-a)*x. Stateful, float.
FilterPtr makeIir(double Alpha) {
  FilterBuilder B("IIR", TokenType::Float, TokenType::Float);
  B.setRates(1, 1);
  const VarDecl *Y = B.stateScalarF("y", 0.0);
  B.assign(Y, B.add(B.mul(B.ref(Y), B.litF(Alpha)),
                    B.mul(B.pop(), B.litF(1.0 - Alpha))));
  B.push(B.ref(Y));
  return B.build();
}

} // namespace

TEST(Stateful, DetectionOnFilterAndGraph) {
  FilterPtr Acc = makeAccumulator();
  EXPECT_TRUE(Acc->isStateful());
  EXPECT_FALSE(makeScaleInt("S", 2)->isStateful());

  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeScaleInt("Pre", 1)));
  Parts.push_back(filterStream(Acc));
  StreamGraph G = flatten(*pipelineStream(std::move(Parts)));
  EXPECT_TRUE(G.hasStatefulFilter());
  EXPECT_FALSE(makeScalePipeline().hasStatefulFilter());
}

TEST(Stateful, StatePersistsAcrossFirings) {
  FilterPtr Acc = makeAccumulator();
  FilterState State = FilterState::initFor(*Acc);
  ChannelBuffer In(TokenType::Int), Out(TokenType::Int);
  for (int64_t V : {1, 2, 3, 4})
    In.push(Scalar::makeInt(V));
  for (int I = 0; I < 4; ++I)
    fireFilter(*Acc, &In, &Out, nullptr, &State);
  EXPECT_EQ(Out.pop().asInt(), 1);
  EXPECT_EQ(Out.pop().asInt(), 3);
  EXPECT_EQ(Out.pop().asInt(), 6);
  EXPECT_EQ(Out.pop().asInt(), 10);
}

TEST(Stateful, InitialValuesRespected) {
  FilterBuilder B("Counter", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const VarDecl *C = B.stateScalarI("c", 100);
  B.popDiscard();
  B.assign(C, B.add(B.ref(C), B.litI(1)));
  B.push(B.ref(C));
  FilterPtr F = B.build();

  FilterState State = FilterState::initFor(*F);
  EXPECT_EQ(State.Slots[C->slot()][0].asInt(), 100);
  ChannelBuffer In(TokenType::Int), Out(TokenType::Int);
  In.push(Scalar::makeInt(0));
  fireFilter(*F, &In, &Out, nullptr, &State);
  EXPECT_EQ(Out.pop().asInt(), 101);
}

TEST(Stateful, GraphInterpreterThreadsStateThrough) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeScaleInt("Pre", 2)));
  Parts.push_back(filterStream(makeAccumulator()));
  StreamGraph G = flatten(*pipelineStream(std::move(Parts)));

  GraphInterpreter GI(G);
  for (int64_t V : {1, 2, 3})
    GI.feedInput({Scalar::makeInt(V)});
  ASSERT_TRUE(GI.runSteadyState({1, 1}, 3));
  // Inputs doubled then accumulated: 2, 6, 12.
  ASSERT_EQ(GI.output().size(), 3u);
  EXPECT_EQ(GI.output()[0].asInt(), 2);
  EXPECT_EQ(GI.output()[1].asInt(), 6);
  EXPECT_EQ(GI.output()[2].asInt(), 12);
}

TEST(Stateful, IirConverges) {
  FilterPtr F = makeIir(0.5);
  FilterState State = FilterState::initFor(*F);
  ChannelBuffer In(TokenType::Float), Out(TokenType::Float);
  double Last = 0.0;
  for (int I = 0; I < 32; ++I) {
    In.push(Scalar::makeFloat(1.0));
    fireFilter(*F, &In, &Out, nullptr, &State);
    Last = Out.pop().asFloat();
  }
  EXPECT_NEAR(Last, 1.0, 1e-6) << "step response settles at the input";
}

TEST(Stateful, GpuCompilerRejects) {
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(makeScaleInt("Pre", 1)));
  Parts.push_back(filterStream(makeAccumulator()));
  StreamGraph G = flatten(*pipelineStream(std::move(Parts)));
  CompileOptions Options;
  Options.Sched.Pmax = 4;
  EXPECT_FALSE(compileForGpu(G, Options).has_value())
      << "the paper's restriction: stateless filters only";
}

TEST(Stateful, StatelessStillCompiles) {
  StreamGraph G = makeScalePipeline();
  CompileOptions Options;
  Options.Sched.Pmax = 4;
  EXPECT_TRUE(compileForGpu(G, Options).has_value());
}

TEST(RateValidation, AcceptsConsistentFilters) {
  EXPECT_FALSE(validateFilterRates(*makeScaleInt("S", 2)).has_value());
  EXPECT_FALSE(validateFilterRates(*makeMovingSum("MS", 4)).has_value());
  EXPECT_FALSE(validateFilterRates(*makeFig4A()).has_value());
  EXPECT_FALSE(validateGraphRates(makeDupSplitGraph()).has_value());
}

TEST(RateValidation, CatchesUnderPopping) {
  FilterBuilder B("Bad", TokenType::Int, TokenType::Int);
  B.setRates(2, 1); // Declares pop 2 but only pops once.
  B.push(B.pop());
  FilterPtr F = B.build();
  auto Err = validateFilterRates(*F);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("pop rate 2"), std::string::npos) << *Err;
}

TEST(RateValidation, CatchesOverPushing) {
  FilterBuilder B("Bad", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const VarDecl *V = B.declVar("v", B.pop());
  B.push(B.ref(V));
  B.push(B.ref(V)); // One too many.
  FilterPtr F = B.build();
  auto Err = validateFilterRates(*F);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("push"), std::string::npos) << *Err;
}

TEST(RateValidation, CatchesBranchDependentRates) {
  FilterBuilder B("Cond", TokenType::Int, TokenType::Int);
  B.setRates(1, 1);
  const VarDecl *V = B.declVar("v", B.pop());
  B.beginIf(B.gt(B.ref(V), B.litI(0)));
  B.push(B.ref(V));
  B.endIf();
  FilterPtr F = B.build();
  auto Err = validateFilterRates(*F);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("control-flow dependent"), std::string::npos);
}

TEST(RateValidation, CompilerRejectsBadRates) {
  FilterBuilder B("Bad", TokenType::Int, TokenType::Int);
  B.setRates(3, 1);
  B.push(B.pop()); // Pops 1, declared 3.
  std::vector<StreamPtr> Parts;
  Parts.push_back(filterStream(B.build()));
  Parts.push_back(filterStream(makeScaleInt("Post", 2)));
  StreamGraph G = flatten(*pipelineStream(std::move(Parts)));
  CompileOptions Options;
  Options.Sched.Pmax = 4;
  EXPECT_FALSE(compileForGpu(G, Options).has_value());
}
