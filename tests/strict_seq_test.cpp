//===- tests/strict_seq_test.cpp - Strict intra-SM sequencing tests ---------===//
//
// Tests the extension over the paper's formulation: disjunctive rows
// forcing same-SM instances into disjoint [o, o+d) windows (see
// buildSwpIlp's StrictIntraSm flag).
//
//===----------------------------------------------------------------------===//

#include "core/IlpScheduler.h"
#include "ilp/BranchAndBound.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "TestGraphs.h"

using namespace sgpu;
using namespace sgpu::testing;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

struct Prepared {
  StreamGraph G;
  SteadyState SS;
  ExecutionConfig Config;
  GpuSteadyState GSS;
};

Prepared prepare(StreamGraph G) {
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  EXPECT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);
  return {std::move(G), std::move(*SS), std::move(*Config), GSS};
}

/// True when no two same-SM instances of \p S overlap in time.
bool windowsDisjoint(const SwpSchedule &S,
                     const std::vector<double> &Delay) {
  for (size_t A = 0; A < S.Instances.size(); ++A)
    for (size_t B = A + 1; B < S.Instances.size(); ++B) {
      const ScheduledInstance &X = S.Instances[A];
      const ScheduledInstance &Y = S.Instances[B];
      if (X.Sm != Y.Sm)
        continue;
      double XEnd = X.O + Delay[X.Node];
      double YEnd = Y.O + Delay[Y.Node];
      if (X.O < YEnd - 1e-6 && Y.O < XEnd - 1e-6)
        return false;
    }
  return true;
}

} // namespace

TEST(StrictSeq, AddsPairVariablesAndRows) {
  Prepared P = prepare(makeFig4Graph());
  double T = 4.0 * computeResMII(P.Config, P.GSS, 2);
  auto Plain = buildSwpIlp(P.G, P.SS, P.Config, P.GSS, 2, T, 8, false);
  auto Strict = buildSwpIlp(P.G, P.SS, P.Config, P.GSS, 2, T, 8, true);
  ASSERT_TRUE(Plain && Strict);
  EXPECT_TRUE(Plain->SeqPairs.empty());
  int64_t N = P.GSS.totalInstances();
  EXPECT_EQ(static_cast<int64_t>(Strict->SeqPairs.size()),
            N * (N - 1) / 2);
  EXPECT_GT(Strict->LP.numVars(), Plain->LP.numVars());
  EXPECT_GT(Strict->LP.numConstraints(), Plain->LP.numConstraints());
}

TEST(StrictSeq, SolutionsHaveDisjointWindows) {
  Prepared P = prepare(makeFig4Graph());
  // Enough II for a sequenced schedule on two SMs.
  double T = 4.0 * computeResMII(P.Config, P.GSS, 2);
  auto M = buildSwpIlp(P.G, P.SS, P.Config, P.GSS, 2, T, 8, true);
  ASSERT_TRUE(M.has_value());
  MilpOptions MO;
  MO.TimeBudgetSeconds = 10.0;
  MilpResult R = solveMilp(M->LP, MO);
  ASSERT_TRUE(R.hasSolution()) << "strict model should be feasible";
  SwpSchedule S = M->decode(R.X);
  EXPECT_TRUE(windowsDisjoint(S, P.Config.Delay));
  // And it still satisfies the paper's constraints.
  EXPECT_FALSE(
      verifySchedule(P.G, P.SS, P.Config, P.GSS, S).has_value());
}

TEST(StrictSeq, SequencedIncumbentSatisfiesModel) {
  // A heuristic schedule whose same-SM windows happen to be disjoint
  // must encode to a feasible strict-model assignment.
  Prepared P = prepare(makeScalePipeline());
  double T = 8.0 * computeResMII(P.Config, P.GSS, 2);
  auto Heur = buildHeuristicSchedule(P.G, P.SS, P.Config, P.GSS, 2, T, 16);
  ASSERT_TRUE(Heur.has_value());
  if (!windowsDisjoint(*Heur, P.Config.Delay))
    GTEST_SKIP() << "heuristic produced overlapping windows here";
  auto M = buildSwpIlp(P.G, P.SS, P.Config, P.GSS, 2, T, 16, true);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->LP.isFeasible(M->encode(*Heur), 1e-5));
}

TEST(StrictSeq, TightensFeasibility) {
  // With every instance forced onto ONE SM at an II just above the sum
  // of delays, the plain model is feasible but any schedule must fit the
  // instances back to back; the strict model must therefore also be
  // feasible at that II but infeasible below the delay sum.
  Prepared P = prepare(makeFig4Graph());
  double Sum = 0.0;
  double MaxD = 0.0;
  for (int V = 0; V < P.G.numNodes(); ++V) {
    Sum += P.Config.Delay[V] * static_cast<double>(P.GSS.Instances[V]);
    MaxD = std::max(MaxD, P.Config.Delay[V]);
  }
  // On one SM, an II below the total work violates constraint (2) in
  // both models; between that and the strict packing bound the strict
  // model can only be feasible if windows fit exactly.
  auto Strict =
      buildSwpIlp(P.G, P.SS, P.Config, P.GSS, 1, Sum * 1.05, 16, true);
  ASSERT_TRUE(Strict.has_value());
  MilpOptions MO;
  MO.TimeBudgetSeconds = 10.0;
  MilpResult R = solveMilp(Strict->LP, MO);
  ASSERT_TRUE(R.hasSolution());
  SwpSchedule S = Strict->decode(R.X);
  EXPECT_TRUE(windowsDisjoint(S, P.Config.Delay));
}

TEST(StrictSeq, SchedulerOptionProducesDisjointWindows) {
  Prepared P = prepare(makeScalePipeline());
  SchedulerOptions SO;
  SO.Pmax = 2;
  SO.UseIlp = true;
  SO.IlpEvenIfHeuristicSucceeds = true;
  SO.TimeBudgetSeconds = 5.0;
  // Run the paper loop, then re-solve the accepted II strictly.
  auto R = scheduleSwp(P.G, P.SS, P.Config, P.GSS, SO);
  ASSERT_TRUE(R.has_value());
  auto M = buildSwpIlp(P.G, P.SS, P.Config, P.GSS, 2,
                       R->FinalII * 1.5, 16, true);
  ASSERT_TRUE(M.has_value());
  MilpOptions MO;
  MO.TimeBudgetSeconds = 10.0;
  MilpResult MR = solveMilp(M->LP, MO);
  ASSERT_TRUE(MR.hasSolution());
  EXPECT_TRUE(windowsDisjoint(M->decode(MR.X), P.Config.Delay));
}
