//===- tests/support_test.cpp - support library unit tests ------------------===//

#include "support/Casting.h"
#include "support/DotWriter.h"
#include "support/MathExtras.h"
#include "support/Rational.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace sgpu;

TEST(MathExtras, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(18, 12), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
}

TEST(MathExtras, Lcm) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(128, 384), 384);
  EXPECT_EQ(lcm64(128, 192), 384);
  EXPECT_EQ(lcm64(1, 1), 1);
  EXPECT_EQ(lcm64(0, 5), 0);
  // The paper's profiling thread counts share lcm 1536.
  EXPECT_EQ(lcm64(lcm64(128, 256), lcm64(384, 512)), 1536);
}

TEST(MathExtras, FloorCeilDiv) {
  EXPECT_EQ(floorDiv(7, 3), 2);
  EXPECT_EQ(floorDiv(-1, 3), -1);
  EXPECT_EQ(floorDiv(-3, 3), -1);
  EXPECT_EQ(floorDiv(-4, 3), -2);
  EXPECT_EQ(ceilDiv(7, 3), 3);
  EXPECT_EQ(ceilDiv(6, 3), 2);
  EXPECT_EQ(ceilDiv(-1, 3), 0);
  EXPECT_EQ(ceilDiv(-4, 3), -1);
}

TEST(MathExtras, FloorMod) {
  EXPECT_EQ(floorMod(7, 3), 1);
  EXPECT_EQ(floorMod(-1, 3), 2);
  EXPECT_EQ(floorMod(-3, 3), 0);
  EXPECT_EQ(floorMod(0, 5), 0);
}

TEST(MathExtras, FloorDivModIdentity) {
  for (int64_t N = -50; N <= 50; ++N)
    for (int64_t D : {1, 2, 3, 7, 16})
      EXPECT_EQ(floorDiv(N, D) * D + floorMod(N, D), N)
          << "n=" << N << " d=" << D;
}

TEST(MathExtras, PowerOf2AndAlign) {
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(128));
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_FALSE(isPowerOf2(96));
  EXPECT_FALSE(isPowerOf2(-4));
  EXPECT_EQ(alignTo(5, 4), 8);
  EXPECT_EQ(alignTo(8, 4), 8);
  EXPECT_EQ(alignTo(1, 128), 128);
}

TEST(Rational, Normalization) {
  Rational R(6, 8);
  EXPECT_EQ(R.numerator(), 3);
  EXPECT_EQ(R.denominator(), 4);
  Rational Neg(3, -9);
  EXPECT_EQ(Neg.numerator(), -1);
  EXPECT_EQ(Neg.denominator(), 3);
  EXPECT_TRUE(Rational(0, 7).isZero());
  EXPECT_EQ(Rational(0, 7).denominator(), 1);
}

TEST(Rational, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 3), Rational(2));
}

TEST(Rational, IntegerInterop) {
  Rational Five(5);
  EXPECT_TRUE(Five.isInteger());
  EXPECT_EQ(Five.asInteger(), 5);
  EXPECT_FALSE(Rational(5, 2).isInteger());
  EXPECT_EQ(Rational(10, 2).asInteger(), 5);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3, 4).str(), "3/4");
  EXPECT_EQ(Rational(7).str(), "7");
}

TEST(Rng, Deterministic) {
  Rng A(7), B(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, SeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 3);
}

TEST(Rng, Ranges) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInt(17);
    EXPECT_GE(V, 0);
    EXPECT_LT(V, 17);
    int64_t W = R.nextIntInRange(-5, 5);
    EXPECT_GE(W, -5);
    EXPECT_LE(W, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(DotWriter, RendersNodesAndEdges) {
  DotWriter W("test");
  W.addNode(0, "A \"quoted\"");
  W.addNode(1, "B", "shape=box");
  W.addEdge(0, 1, "2:3");
  std::string S = W.str();
  EXPECT_NE(S.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(S.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(S.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(S.find("shape=box"), std::string::npos);
}
