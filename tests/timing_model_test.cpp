//===- tests/timing_model_test.cpp - TimingModel interface tests -------------===//
//
// The analytic implementation behind the TimingModel seam must reproduce
// the KernelTiming free functions exactly — ExecutionModel, Profiler and
// Compiler historically called them directly, and the baseline numbers
// must not move when the calls route through the interface.
//
//===----------------------------------------------------------------------===//

#include "gpusim/TimingModel.h"

#include <gtest/gtest.h>

using namespace sgpu;

namespace {

const GpuArch Arch = GpuArch::geForce8800GTS512();

SimInstance makeInstance(int64_t Threads, int64_t ComputeOps,
                         int64_t Reads, int64_t Writes) {
  SimInstance Inst;
  Inst.Cost.Threads = Threads;
  Inst.Cost.ComputeOps = ComputeOps;
  Inst.Cost.GlobalAccesses = Reads + Writes;
  Inst.Cost.TxnsPerAccess = 1.0 / 16.0;
  if (Reads > 0) {
    MemStream R;
    R.Count = Reads;
    R.KeyRate = Reads;
    Inst.Streams.push_back(R);
  }
  if (Writes > 0) {
    MemStream W;
    W.Count = Writes;
    W.KeyRate = Writes;
    W.IsWrite = true;
    Inst.Streams.push_back(W);
  }
  return Inst;
}

} // namespace

TEST(TimingModelFactory, KindsAndNames) {
  auto A = createTimingModel(TimingModelKind::Analytic, Arch);
  auto C = createTimingModel(TimingModelKind::Cycle, Arch);
  ASSERT_TRUE(A && C);
  EXPECT_EQ(A->kind(), TimingModelKind::Analytic);
  EXPECT_EQ(C->kind(), TimingModelKind::Cycle);
  EXPECT_STREQ(A->name(), "analytic");
  EXPECT_STREQ(C->name(), "cycle");
  EXPECT_EQ(A->arch().NumSMs, Arch.NumSMs);
}

TEST(TimingModelFactory, ParseRoundTrips) {
  for (TimingModelKind K :
       {TimingModelKind::Analytic, TimingModelKind::Cycle})
    EXPECT_EQ(parseTimingModelKind(timingModelKindName(K)), K);
  EXPECT_FALSE(parseTimingModelKind("").has_value());
  EXPECT_FALSE(parseTimingModelKind("Cycle").has_value());
  EXPECT_FALSE(parseTimingModelKind("simulator").has_value());
}

TEST(AnalyticModel, MatchesFreeFunctionsExactly) {
  auto Model = createTimingModel(TimingModelKind::Analytic, Arch);
  SimInstance Inst = makeInstance(256, 100, 8, 4);
  Inst.Cost.SfuOps = 3;
  Inst.Cost.SharedAccesses = 12;
  Inst.Cost.SharedConflictDegree = 2.0;
  Inst.Cost.SpillAccesses = 6;
  EXPECT_DOUBLE_EQ(Model->instanceCycles(Inst),
                   instanceCycles(Arch, Inst.Cost));
  EXPECT_DOUBLE_EQ(Model->instanceTransactions(Inst),
                   instanceTransactions(Inst.Cost));
}

TEST(AnalyticModel, ProfileRunIsLaunchPlusIterations) {
  auto Model = createTimingModel(TimingModelKind::Analytic, Arch);
  SimInstance Inst = makeInstance(128, 40, 4, 4);
  double Per = instanceCycles(Arch, Inst.Cost);
  EXPECT_DOUBLE_EQ(Model->profileRunCycles(Inst, 48),
                   static_cast<double>(Arch.KernelLaunchCycles) +
                       48.0 * Per);
}

TEST(AnalyticModel, SimulateKernelMatchesHandComputation) {
  auto Model = createTimingModel(TimingModelKind::Analytic, Arch);
  SimInstance A = makeInstance(256, 100, 8, 4);
  SimInstance B = makeInstance(128, 400, 16, 8);

  KernelDesc Desc;
  Desc.Instances = {A, B};
  Desc.SmStreams = {{{0, 3}, {1, 1}}, {{1, 2}}};
  Desc.StageSpan = 4;

  // Per-SM serial sums use the issue-side cost only; the chip-wide
  // bandwidth bound inside kernelCycles charges the transactions once.
  double CycA = instanceIssueCycles(Arch, A.Cost);
  double CycB = instanceIssueCycles(Arch, B.Cost);
  double TxnA = instanceTransactions(A.Cost);
  double TxnB = instanceTransactions(B.Cost);
  KernelWork Work;
  Work.MaxSmCycles = std::max(CycA * 3.0 + CycB, CycB * 2.0);
  Work.TotalTxns = (TxnA * 3.0 + TxnB) + TxnB * 2.0;

  KernelSimResult R = Model->simulateKernel(Desc);
  EXPECT_DOUBLE_EQ(R.TotalCycles, kernelCycles(Arch, Work));
  EXPECT_DOUBLE_EQ(R.FillCycles, 4.0 * R.TotalCycles);
  ASSERT_EQ(R.PerSm.size(), 2u);
  EXPECT_DOUBLE_EQ(R.PerSm[0].TotalCycles, CycA * 3.0 + CycB);
  EXPECT_DOUBLE_EQ(R.PerSm[1].TotalCycles, CycB * 2.0);
  EXPECT_DOUBLE_EQ(R.Transactions, Work.TotalTxns);
}

TEST(AnalyticModel, EmptyKernelIsLaunchOnly) {
  auto Model = createTimingModel(TimingModelKind::Analytic, Arch);
  KernelDesc Desc;
  Desc.SmStreams.resize(4);
  KernelSimResult R = Model->simulateKernel(Desc);
  EXPECT_DOUBLE_EQ(R.TotalCycles,
                   static_cast<double>(Arch.KernelLaunchCycles));
  EXPECT_DOUBLE_EQ(R.Transactions, 0.0);
}
