//===- tests/trace_test.cpp - Trace span / Chrome export tests ---------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <set>
#include <thread>

using namespace sgpu;

namespace {

/// Guard that enables tracing for one test and restores the default.
struct ScopedTracing {
  ScopedTracing() {
    traceSetEnabled(true);
    traceReset();
  }
  ~ScopedTracing() { traceSetEnabled(false); }
};

const TraceEvent *findEvent(const std::vector<TraceEvent> &Events,
                            const std::string &Name) {
  for (const TraceEvent &E : Events)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

TEST(Trace, DisabledByDefaultRecordsNothing) {
  traceSetEnabled(false);
  traceReset();
  { TraceSpan Span("trace_test.disabled"); }
  EXPECT_EQ(findEvent(traceSnapshot(), "trace_test.disabled"), nullptr);
}

TEST(Trace, NestedSpansAreContained) {
  ScopedTracing Guard;
  {
    TraceSpan Outer("trace_test.outer");
    {
      TraceSpan Inner("trace_test.inner", "test");
      Inner.argInt("depth", 2);
    }
  }
  std::vector<TraceEvent> Events = traceSnapshot();
  const TraceEvent *Outer = findEvent(Events, "trace_test.outer");
  const TraceEvent *Inner = findEvent(Events, "trace_test.inner");
  ASSERT_TRUE(Outer && Inner);
  EXPECT_EQ(Inner->Cat, "test");
  EXPECT_EQ(Outer->Tid, Inner->Tid);
  // Containment: the inner span starts no earlier and ends no later.
  EXPECT_GE(Inner->StartMicros, Outer->StartMicros);
  EXPECT_LE(Inner->StartMicros + Inner->DurMicros,
            Outer->StartMicros + Outer->DurMicros + 1e-6);
  // Spans are recorded at destruction: inner lands before outer.
  EXPECT_LT(Inner - Events.data(), Outer - Events.data());
  ASSERT_EQ(Inner->Args.size(), 1u);
  EXPECT_EQ(Inner->Args[0].first, "depth");
  EXPECT_EQ(Inner->Args[0].second, "2");
}

TEST(Trace, ThreadsGetDistinctStableIds) {
  ScopedTracing Guard;
  constexpr int Threads = 4;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([T] {
      traceSetThreadName("worker-" + std::to_string(T));
      TraceSpan Span("trace_test.thread");
      Span.argInt("worker", T);
      // A second span from the same thread must reuse its id.
      TraceSpan Again("trace_test.again");
    });
  for (std::thread &T : Pool)
    T.join();

  std::vector<TraceEvent> Events = traceSnapshot();
  std::set<int> Tids;
  for (const TraceEvent &E : Events)
    if (E.Name == "trace_test.thread")
      Tids.insert(E.Tid);
  EXPECT_EQ(Tids.size(), size_t(Threads));
  for (const TraceEvent &E : Events)
    if (E.Name == "trace_test.again")
      EXPECT_TRUE(Tids.count(E.Tid));
}

TEST(Trace, JsonIsValidChromeTraceFormat) {
  ScopedTracing Guard;
  traceSetThreadName("main-test-thread");
  {
    TraceSpan Span("trace_test.json \"quoted\"", "cat");
    Span.argStr("note", "a\\b");
    Span.argNum("ratio", 0.5);
  }
  std::string Json = traceToJson();
  std::string Err;
  std::optional<JsonValue> Doc = JsonValue::parse(Json, &Err);
  ASSERT_TRUE(Doc) << Err;
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  bool SawSpan = false, SawThreadName = false;
  for (const JsonValue &E : Events->elements()) {
    const JsonValue *Ph = E.find("ph");
    ASSERT_TRUE(Ph && Ph->isString());
    if (Ph->asString() == "X") {
      ASSERT_TRUE(E.find("name") && E.find("ts") && E.find("dur") &&
                  E.find("pid") && E.find("tid"));
      if (E.find("name")->asString() == "trace_test.json \"quoted\"") {
        SawSpan = true;
        const JsonValue *Args = E.find("args");
        ASSERT_TRUE(Args && Args->isObject());
        EXPECT_EQ(Args->find("note")->asString(), "a\\b");
        EXPECT_EQ(Args->find("ratio")->asNumber(), 0.5);
        EXPECT_GE(E.find("dur")->asNumber(), 0.0);
      }
    } else if (Ph->asString() == "M" &&
               E.find("name")->asString() == "thread_name") {
      const JsonValue *Args = E.find("args");
      ASSERT_TRUE(Args && Args->isObject());
      if (Args->find("name")->asString() == "main-test-thread")
        SawThreadName = true;
    }
  }
  EXPECT_TRUE(SawSpan);
  EXPECT_TRUE(SawThreadName);
}

TEST(Trace, WriteFileRoundTrips) {
  ScopedTracing Guard;
  { TraceSpan Span("trace_test.file"); }
  std::string Path =
      ::testing::TempDir() + "sgpu_trace_test_out.json";
  ASSERT_TRUE(traceWriteFile(Path));
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Body((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  std::optional<JsonValue> Doc = JsonValue::parse(Body);
  ASSERT_TRUE(Doc);
  EXPECT_NE(Body.find("trace_test.file"), std::string::npos);
}

TEST(Trace, StageTimerFeedsHistogramEvenWhenTracingDisabled) {
  traceSetEnabled(false);
  traceReset();
  Histogram &H = metricHistogram("stage.trace_test.stage.seconds");
  int64_t Before = H.count();
  { StageTimer Timer("trace_test.stage"); }
  EXPECT_EQ(H.count(), Before + 1);
  EXPECT_GE(H.max(), 0.0);
  // And no trace event was recorded.
  EXPECT_EQ(findEvent(traceSnapshot(), "trace_test.stage"), nullptr);
}

TEST(Trace, StageTimerRecordsSpanWhenEnabled) {
  ScopedTracing Guard;
  { StageTimer Timer("trace_test.timed_stage"); }
  const std::vector<TraceEvent> Events = traceSnapshot();
  const TraceEvent *E = findEvent(Events, "trace_test.timed_stage");
  ASSERT_TRUE(E);
  EXPECT_GE(E->DurMicros, 0.0);
}

TEST(Trace, ResetDropsEvents) {
  ScopedTracing Guard;
  { TraceSpan Span("trace_test.pre_reset"); }
  EXPECT_NE(findEvent(traceSnapshot(), "trace_test.pre_reset"), nullptr);
  traceReset();
  EXPECT_TRUE(traceSnapshot().empty());
}

} // namespace
