//===- tests/verifier_mutation_test.cpp - Negative-path verifier tests ------===//
//
// The ScheduleVerifier is the oracle every other check leans on, so it
// gets its own negative-path suite: take a known-good schedule, corrupt
// it in a specific way, and require the verifier to reject it with a
// message that names the violated rule. A verifier that accepts corrupt
// schedules would silently defang the whole fuzzing subsystem.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "profile/ConfigSelection.h"
#include "profile/Profiler.h"
#include "testing/Oracles.h"
#include "testing/TestGraphs.h"

#include <gtest/gtest.h>

using namespace sgpu;
using namespace sgpu::testing;

namespace {

struct CompiledGraph {
  StreamGraph G;
  SteadyState SS;
  ExecutionConfig Config;
  GpuSteadyState GSS;
  SwpSchedule Schedule;
};

/// Compiles \p G down to a verified SWP schedule with \p Pmax SMs.
CompiledGraph compileOrDie(StreamGraph G, int Pmax) {
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  ProfileTable PT =
      profileGraph(GpuArch::geForce8800GTS512(), G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  EXPECT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);
  SchedulerOptions SO;
  SO.Pmax = Pmax;
  SO.TimeBudgetSeconds = 0.25;
  auto Sched = scheduleSwp(G, *SS, *Config, GSS, SO);
  EXPECT_TRUE(Sched.has_value());
  auto Err = verifySchedule(G, *SS, *Config, GSS, Sched->Schedule);
  EXPECT_FALSE(Err.has_value()) << *Err;
  return {std::move(G), std::move(*SS), std::move(*Config), std::move(GSS),
          std::move(Sched->Schedule)};
}

CompiledGraph compileFig4(int Pmax = 4) {
  return compileOrDie(makeFig4Graph(), Pmax);
}

/// Expects the verifier to reject \p C's (mutated) schedule with a
/// message containing \p Substring.
void expectRejected(const CompiledGraph &C, const std::string &Substring) {
  auto Err = verifySchedule(C.G, C.SS, C.Config, C.GSS, C.Schedule);
  ASSERT_TRUE(Err.has_value())
      << "verifier accepted a schedule corrupted to trigger: " << Substring;
  EXPECT_NE(Err->find(Substring), std::string::npos)
      << "rejected, but for the wrong reason: " << *Err;
}

} // namespace

TEST(VerifierMutation, DoubleAssignedInstanceIsRejected) {
  CompiledGraph C = compileFig4();
  ASSERT_TRUE(injectScheduleBug(C.Schedule, ScheduleBugKind::DoubleAssign));
  expectRejected(C, "duplicate instance");
}

TEST(VerifierMutation, DroppedInstanceIsRejected) {
  CompiledGraph C = compileFig4();
  ASSERT_TRUE(injectScheduleBug(C.Schedule, ScheduleBugKind::DropInstance));
  expectRejected(C, "missing instances");
}

TEST(VerifierMutation, InstancePastTheIIIsRejected) {
  CompiledGraph C = compileFig4();
  ASSERT_TRUE(injectScheduleBug(C.Schedule, ScheduleBugKind::ExceedII));
  expectRejected(C, "constraint (4)");
}

TEST(VerifierMutation, SmOutOfRangeIsRejected) {
  CompiledGraph C = compileFig4();
  ASSERT_TRUE(injectScheduleBug(C.Schedule, ScheduleBugKind::BadSm));
  expectRejected(C, "outside [0, Pmax)");
}

TEST(VerifierMutation, UnknownNodeIsRejected) {
  CompiledGraph C = compileFig4();
  ASSERT_FALSE(C.Schedule.Instances.empty());
  C.Schedule.Instances.front().Node = C.G.numNodes();
  expectRejected(C, "unknown node");
}

TEST(VerifierMutation, InstanceIndexOutOfRangeIsRejected) {
  CompiledGraph C = compileFig4();
  ASSERT_FALSE(C.Schedule.Instances.empty());
  C.Schedule.Instances.front().K += 10000;
  expectRejected(C, "out of range");
}

// Dependence order: on a deep single-SM pipeline, swapping the o slots of
// adjacent producer/consumer instances must break a dependence or overlap
// constraint for at least one pair. (Not every swap is illegal — two
// independent instances can trade slots freely — which is exactly why the
// verifier, not slot order, is the oracle.)
TEST(VerifierMutation, SomeSlotSwapBreaksDependenceOrder) {
  CompiledGraph C = compileOrDie(makeDeepScalePipeline(6), /*Pmax=*/1);

  int Rejections = 0;
  // smOrder hands back pointers into Instances; recover indices so the
  // swap can be applied to a fresh copy each round.
  std::vector<size_t> Order;
  for (const ScheduledInstance *SI : C.Schedule.smOrder(0))
    Order.push_back(static_cast<size_t>(SI - C.Schedule.Instances.data()));
  for (size_t I = 0; I + 1 < Order.size(); ++I) {
    SwpSchedule Mutated = C.Schedule;
    std::swap(Mutated.Instances[Order[I]].O,
              Mutated.Instances[Order[I + 1]].O);
    if (verifySchedule(C.G, C.SS, C.Config, C.GSS, Mutated).has_value())
      ++Rejections;
  }
  EXPECT_GT(Rejections, 0)
      << "every adjacent slot swap on one SM passed the verifier";
}

// The injector itself must refuse schedules too small for the requested
// corruption rather than mutating nothing and reporting success.
TEST(VerifierMutation, InjectorReportsWhenItCannotCorrupt) {
  SwpSchedule Empty;
  EXPECT_FALSE(injectScheduleBug(Empty, ScheduleBugKind::DoubleAssign));
  EXPECT_FALSE(injectScheduleBug(Empty, ScheduleBugKind::ExceedII));
  EXPECT_FALSE(injectScheduleBug(Empty, ScheduleBugKind::BadSm));
  EXPECT_FALSE(injectScheduleBug(Empty, ScheduleBugKind::DropInstance));
  EXPECT_FALSE(injectScheduleBug(Empty, ScheduleBugKind::SwapSlots));
}

//===----------------------------------------------------------------------===//
// Hybrid (CPU+GPU) mutations
//===----------------------------------------------------------------------===//

namespace {

struct HybridCompiled {
  CompiledGraph C;
  MachineModel Machine;
};

/// Compiles Fig. 4 onto a hybrid machine (4 SMs + 2 CPU cores) and
/// verifies the schedule clean before handing it over for corruption.
HybridCompiled compileFig4Hybrid() {
  StreamGraph G = makeFig4Graph();
  auto SS = SteadyState::compute(G);
  EXPECT_TRUE(SS.has_value());
  const GpuArch Arch = GpuArch::geForce8800GTS512();
  ProfileTable PT = profileGraph(Arch, G, LayoutKind::Shuffled);
  auto Config = selectExecutionConfig(*SS, PT);
  EXPECT_TRUE(Config.has_value());
  GpuSteadyState GSS =
      computeGpuSteadyState(SS->repetitions(), Config->Threads);
  CpuModel Cpu;
  Cpu.NumCores = 2;
  MachineModel Machine = MachineModel::hybrid(Arch, 4, Cpu, 8);
  computeCpuDelays(*Config, G, Cpu, Arch);
  SchedulerOptions SO;
  SO.Pmax = Machine.totalProcs();
  SO.TimeBudgetSeconds = 0.25;
  auto Sched = scheduleSwp(G, *SS, *Config, GSS, SO, &Machine);
  EXPECT_TRUE(Sched.has_value());
  auto Err =
      verifySchedule(G, *SS, *Config, GSS, Sched->Schedule, &Machine);
  EXPECT_FALSE(Err.has_value()) << *Err;
  return {{std::move(G), std::move(*SS), std::move(*Config),
           std::move(GSS), std::move(Sched->Schedule)},
          std::move(Machine)};
}

} // namespace

TEST(VerifierMutation, CorruptedClassAssignmentIsRejectedWithClassDiag) {
  HybridCompiled H = compileFig4Hybrid();
  // Corrupt one processor-class assignment: move a GPU-resident
  // instance onto a CPU core whose class-priced delay we inflate past
  // the II. The verifier must reject naming both the instance and the
  // class it was moved to.
  ScheduledInstance *Victim = nullptr;
  for (ScheduledInstance &SI : H.C.Schedule.Instances)
    if (SI.Sm < H.Machine.numGpuSms()) {
      Victim = &SI;
      break;
    }
  ASSERT_NE(Victim, nullptr);
  H.C.Config.CpuDelay[Victim->Node] = 10.0 * H.C.Schedule.II;
  Victim->Sm = H.Machine.numGpuSms(); // First CPU core.

  auto Err = verifySchedule(H.C.G, H.C.SS, H.C.Config, H.C.GSS,
                            H.C.Schedule, &H.Machine);
  ASSERT_TRUE(Err.has_value())
      << "verifier accepted a corrupted class assignment";
  EXPECT_NE(Err->find("constraint"), std::string::npos) << *Err;
  // Diagnostic names the instance...
  EXPECT_NE(Err->find(H.C.G.node(Victim->Node).Name), std::string::npos)
      << *Err;
  EXPECT_NE(Err->find("instance k=" + std::to_string(Victim->K)),
            std::string::npos)
      << *Err;
  // ...and the processor class it was illegally moved to.
  EXPECT_NE(Err->find("cpu core 0 (class cpu)"), std::string::npos) << *Err;
}

TEST(VerifierMutation, HybridPmaxMismatchIsRejected) {
  HybridCompiled H = compileFig4Hybrid();
  H.C.Schedule.Pmax = H.Machine.numGpuSms(); // Drop the CPU cores.
  auto Err = verifySchedule(H.C.G, H.C.SS, H.C.Config, H.C.GSS,
                            H.C.Schedule, &H.Machine);
  ASSERT_TRUE(Err.has_value());
}

TEST(VerifierMutation, CoarseningOutsideMemoryBoundIsRejected) {
  HybridCompiled H = compileFig4Hybrid();
  ASSERT_FALSE(H.C.Schedule.ClassCoarsening.empty());
  H.C.Schedule.ClassCoarsening[0] = 1 << 20; // No SM holds this.
  auto Err = verifySchedule(H.C.G, H.C.SS, H.C.Config, H.C.GSS,
                            H.C.Schedule, &H.Machine);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("outside its memory bound"), std::string::npos)
      << *Err;
}
