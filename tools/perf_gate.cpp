//===- tools/perf_gate.cpp - CI perf-regression gate -------------------------===//
//
// Replays the paper's eight Table I benchmarks through the SWP compiler,
// collects the pipeline metrics registry around each compile (per-stage
// wall time, simplex pivots, B&B node lifecycle, II candidates, worker
// utilization, schedule quality) and compares the counts against a
// checked-in baseline with per-class relative thresholds. CI runs this
// after the Release build and fails the PR on regression; the emitted
// perf_report.json is uploaded as an artifact either way.
//
// Usage:
//   perf_gate [--baseline=FILE] [--out=FILE] [--trace-out=FILE]
//             [--update] [--jobs=N] [--count-rel=F] [--quality-rel=F]
//             [--time-rel=F] [--gate-times]
//
// Exit status: 0 gate passed (or --update), 1 regression, 2 usage/IO.
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "codegen/CudaEmitter.h"
#include "core/Compiler.h"
#include "ir/StreamGraph.h"
#include "support/Metrics.h"
#include "support/PerfGate.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: perf_gate [options]\n"
      "  --baseline=FILE  checked-in baseline (default "
      "tools/perf_baseline.json)\n"
      "  --out=FILE       machine-readable report (default "
      "perf_report.json)\n"
      "  --trace-out=FILE also write a Chrome trace of the whole run\n"
      "  --update         rewrite the baseline from this run and exit 0\n"
      "  --jobs=N         scheduling-engine workers (default 4)\n"
      "  --count-rel=F    counter growth allowance (default 0.35)\n"
      "  --quality-rel=F  II/speedup allowance (default 0.02)\n"
      "  --time-rel=F     stage-time allowance (default 0.75)\n"
      "  --gate-times     fail on stage-time regressions too\n");
}

bool startsWith(const char *Arg, const char *Prefix) {
  return std::strncmp(Arg, Prefix, std::strlen(Prefix)) == 0;
}

/// Compiles one benchmark with the gate's fixed configuration and turns
/// the registry delta into a sample. Two choices make every Count-class
/// metric deterministic run to run (only wall times vary): the worker
/// split (4 engine workers over a full II window) leaves each MILP
/// single-threaded, and the solver is cut on a node budget instead of
/// the default wall-clock budget, so hard searches (Bitonic, DES) stop
/// at the same node on any machine.
PerfSample measureBenchmark(const BenchmarkSpec &Spec, int Jobs) {
  MetricsRegistry::global().reset();

  TraceSpan Span("perf_gate.benchmark", "perf");
  Span.argStr("benchmark", Spec.Name);

  PerfSample S;
  S.Name = Spec.Name;

  StreamPtr Program = Spec.Build();
  StreamGraph G = flatten(*Program);

  CompileOptions Options;
  Options.Strat = Strategy::Swp;
  Options.Coarsening = 8;
  Options.Sched.Pmax = 16;
  Options.Sched.NumWorkers = Jobs;
  // Wall clock must never be the reason a search stops: give it a
  // budget no gate run will hit and cap nodes and simplex iterations
  // instead. 400 nodes is roughly what the default 2 s budget bought
  // on the reference machine; the iteration cap bounds graphs whose
  // single LP relaxation would otherwise run for minutes (Bitonic).
  Options.Sched.TimeBudgetSeconds = 300.0;
  Options.Sched.MaxIlpNodes = 400;
  Options.Sched.MaxLpIterations = 2000;
  std::optional<CompileReport> R = compileForGpu(G, Options);
  if (!R) {
    S.Metrics["compile.failed"] = 1.0;
    return S;
  }

  // Exercise code generation so its counters gate too.
  auto SS = SteadyState::compute(G);
  CudaEmitOptions EmitOpts;
  EmitOpts.Layout = R->Layout;
  EmitOpts.Coarsening = Options.Coarsening;
  emitCudaSource(G, *SS, R->Config, R->GSS, R->Schedule, EmitOpts);

  // Replay the final schedule through the cycle simulator: its event
  // counts (warps issued, transactions, stall cycles) are pure functions
  // of the schedule, so they gate as Count-class metrics and catch
  // simulator regressions the analytic numbers cannot see.
  auto CycleModel =
      createTimingModel(TimingModelKind::Cycle, Options.Arch);
  KernelDesc Desc =
      buildSwpKernelDesc(Options.Arch, G, R->Config, R->Schedule,
                         R->Layout, Options.Coarsening);
  KernelSimResult Sim = CycleModel->simulateKernel(Desc);

  MetricsRegistry::Snapshot Snap = MetricsRegistry::global().snapshot();
  for (const auto &[Name, Val] : Snap.Counters)
    S.Metrics[Name] = static_cast<double>(Val);
  for (const auto &[Name, H] : Snap.Histograms)
    if (classifyMetric(Name) == MetricClass::Time)
      S.Metrics[Name] = H.Sum;

  S.Metrics["final_ii"] = R->SchedStats.FinalII;
  S.Metrics["speedup"] = R->Speedup;
  S.Metrics["cyclesim.kernel_cycles"] = Sim.TotalCycles;
  S.Metrics["buffer_bytes"] = static_cast<double>(R->BufferBytes);
  // Busy time over summed per-worker drain-loop spans (MilpResult
  // docs): 1.0 for a single-worker solve, dips only for real idling.
  S.Metrics["solver.worker_utilization"] =
      R->SchedStats.SolverWorkerSeconds > 0.0
          ? R->SchedStats.SolverBusySeconds / R->SchedStats.SolverWorkerSeconds
          : 0.0;
  return S;
}

} // namespace

int main(int argc, char **argv) {
  std::string BaselinePath = "tools/perf_baseline.json";
  std::string OutPath = "perf_report.json";
  std::string TraceOut;
  bool Update = false;
  int Jobs = 4;
  PerfThresholds Thresholds;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (startsWith(Arg, "--baseline=")) {
      BaselinePath = Arg + 11;
    } else if (startsWith(Arg, "--out=")) {
      OutPath = Arg + 6;
    } else if (startsWith(Arg, "--trace-out=")) {
      TraceOut = Arg + 12;
    } else if (std::strcmp(Arg, "--update") == 0) {
      Update = true;
    } else if (startsWith(Arg, "--jobs=")) {
      Jobs = std::atoi(Arg + 7);
      if (Jobs < 1) {
        std::fprintf(stderr, "error: jobs must be >= 1\n");
        return 2;
      }
    } else if (startsWith(Arg, "--count-rel=")) {
      Thresholds.CountRel = std::atof(Arg + 12);
    } else if (startsWith(Arg, "--quality-rel=")) {
      Thresholds.QualityRel = std::atof(Arg + 14);
    } else if (startsWith(Arg, "--time-rel=")) {
      Thresholds.TimeRel = std::atof(Arg + 11);
    } else if (std::strcmp(Arg, "--gate-times") == 0) {
      Thresholds.GateTimes = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage();
      return 2;
    }
  }

  if (TraceOut.empty())
    traceInitFromEnv(&TraceOut);
  if (!TraceOut.empty()) {
    traceSetEnabled(true);
    traceSetThreadName("perf_gate");
  }

  std::vector<PerfSample> Measured;
  for (const BenchmarkSpec &Spec : allBenchmarks()) {
    PerfSample S = measureBenchmark(Spec, Jobs);
    std::printf("%-12s pivots=%-8.0f bnb_nodes=%-6.0f ii=%-8.4g "
                "speedup=%-7.4g stage_s=%.3f util=%.2f\n",
                S.Name.c_str(), S.Metrics["simplex.pivots"],
                S.Metrics["bnb.nodes_solved"], S.Metrics["final_ii"],
                S.Metrics["speedup"],
                S.Metrics["stage.compile.total.seconds"],
                S.Metrics["solver.worker_utilization"]);
    Measured.push_back(std::move(S));
  }

  auto WriteFile = [](const std::string &Path,
                      const std::string &Body) -> bool {
    std::ofstream Out(Path, std::ios::binary);
    if (!Out)
      return false;
    Out << Body;
    return static_cast<bool>(Out);
  };

  if (!TraceOut.empty() && !traceWriteFile(TraceOut))
    std::fprintf(stderr, "warning: cannot write trace file '%s'\n",
                 TraceOut.c_str());

  if (Update) {
    std::string Doc = perfSamplesToJson(Measured);
    if (!WriteFile(BaselinePath, Doc) || !WriteFile(OutPath, Doc)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   BaselinePath.c_str());
      return 2;
    }
    std::printf("baseline updated: %s\n", BaselinePath.c_str());
    return 0;
  }

  std::ifstream In(BaselinePath, std::ios::binary);
  if (!In) {
    std::fprintf(stderr,
                 "error: cannot open baseline '%s' (run with --update "
                 "to create it)\n",
                 BaselinePath.c_str());
    WriteFile(OutPath, perfSamplesToJson(Measured));
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Err;
  std::optional<std::vector<PerfSample>> Baseline =
      parsePerfSamples(Buf.str(), &Err);
  if (!Baseline) {
    std::fprintf(stderr, "error: malformed baseline '%s': %s\n",
                 BaselinePath.c_str(), Err.c_str());
    WriteFile(OutPath, perfSamplesToJson(Measured));
    return 2;
  }

  PerfComparison Cmp = comparePerf(*Baseline, Measured, Thresholds);
  if (!WriteFile(OutPath, perfSamplesToJson(Measured, &Cmp)))
    std::fprintf(stderr, "warning: cannot write report '%s'\n",
                 OutPath.c_str());

  for (const PerfFinding &F : Cmp.Findings)
    std::fprintf(stderr, "%s %s\n", F.Fails ? "FAIL" : "note",
                 F.str().c_str());
  std::printf("perf gate: %s (%zu finding%s, report: %s)\n",
              Cmp.Pass ? "PASS" : "FAIL", Cmp.Findings.size(),
              Cmp.Findings.size() == 1 ? "" : "s", OutPath.c_str());
  return Cmp.Pass ? 0 : 1;
}
