//===- tools/sgpu-bench-load.cpp - Load generator for sgpu-served ------------===//
//
// Replays randomized GraphGen stream programs (and, with --table1, the
// paper's eight benchmarks) against a running sgpu-served daemon and
// reports client-observed latency percentiles, throughput and cache hit
// rate, writing the whole run into BENCH_served.json. The second pass of
// a --passes=2 run re-sends the same programs, so its hit rate and p50
// measure the schedule cache; CI asserts both (--require-hit-rate,
// --require-p50-hit-ms).
//
// Usage:
//   sgpu-bench-load [--connect=HOST:PORT | --unix=PATH]
//                   [--count=N] [--passes=N] [--repeat-ratio=F]
//                   [--concurrency=N] [--seed=N] [--table1]
//                   [--force-cold] [--out=FILE]
//                   [--require-hit-rate=F] [--require-p50-hit-ms=F]
//
//===----------------------------------------------------------------------===//

#include "ir/StreamGraph.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "testing/DslPrinter.h"
#include "testing/GraphGen.h"

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <netdb.h>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace sgpu;
using namespace sgpu::testing;

namespace {

bool startsWith(const char *Arg, const char *Prefix) {
  return std::strncmp(Arg, Prefix, std::strlen(Prefix)) == 0;
}

//===----------------------------------------------------------------------===//
// Line-framed client connection
//===----------------------------------------------------------------------===//

class Client {
public:
  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool connectTcp(const std::string &Host, int Port, std::string *Err) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return fail(Err, "socket");
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Port));
    if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
      return fail(Err, "bad address " + Host);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
      return fail(Err, "connect " + Host + ":" + std::to_string(Port));
    return true;
  }

  bool connectUnix(const std::string &Path, std::string *Err) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return fail(Err, "socket");
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path))
      return fail(Err, "unix path too long");
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
      return fail(Err, "connect " + Path);
    return true;
  }

  /// Sends \p Line (plus newline) and reads one response line.
  bool roundTrip(const std::string &Line, std::string *Response) {
    std::string Framed = Line;
    Framed.push_back('\n');
    size_t Off = 0;
    while (Off < Framed.size()) {
      ssize_t N = ::send(Fd, Framed.data() + Off, Framed.size() - Off, 0);
      if (N <= 0) {
        if (N < 0 && errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    size_t Nl;
    while ((Nl = Buf.find('\n')) == std::string::npos) {
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return false;
      Buf.append(Chunk, static_cast<size_t>(N));
    }
    *Response = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    return true;
  }

private:
  bool fail(std::string *Err, const std::string &Msg) {
    if (Err)
      *Err = Msg + " (" + std::strerror(errno) + ")";
    return false;
  }

  int Fd = -1;
  std::string Buf;
};

//===----------------------------------------------------------------------===//
// Run bookkeeping
//===----------------------------------------------------------------------===//

struct RequestResult {
  bool Ok = false;
  bool Hit = false;
  int BusyRetries = 0;
  double ClientMs = 0.0;
  std::string Error;
};

struct PassStats {
  int Requests = 0, Ok = 0, Errors = 0, Hits = 0;
  int64_t BusyRetries = 0;
  double WallSeconds = 0.0;
  double P50Ms = 0.0, P99Ms = 0.0, MeanMs = 0.0;
  double P50HitMs = 0.0, P50MissMs = 0.0;

  double hitRate() const { return Ok > 0 ? double(Hits) / double(Ok) : 0.0; }
  double throughputRps() const {
    return WallSeconds > 0 ? double(Requests) / WallSeconds : 0.0;
  }
};

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  size_t Idx = static_cast<size_t>(P * double(V.size() - 1) + 0.5);
  return V[std::min(Idx, V.size() - 1)];
}

PassStats summarize(const std::vector<RequestResult> &Results,
                    double WallSeconds) {
  PassStats S;
  S.Requests = static_cast<int>(Results.size());
  S.WallSeconds = WallSeconds;
  std::vector<double> All, Hit, Miss;
  double Sum = 0.0;
  for (const RequestResult &R : Results) {
    S.BusyRetries += R.BusyRetries;
    if (!R.Ok) {
      ++S.Errors;
      continue;
    }
    ++S.Ok;
    if (R.Hit)
      ++S.Hits;
    All.push_back(R.ClientMs);
    (R.Hit ? Hit : Miss).push_back(R.ClientMs);
    Sum += R.ClientMs;
  }
  S.P50Ms = percentile(All, 0.50);
  S.P99Ms = percentile(All, 0.99);
  S.MeanMs = S.Ok > 0 ? Sum / double(S.Ok) : 0.0;
  S.P50HitMs = percentile(Hit, 0.50);
  S.P50MissMs = percentile(Miss, 0.50);
  return S;
}

void writePassJson(JsonWriter &W, const char *Name, const PassStats &S) {
  W.beginObject(Name);
  W.writeInt("requests", S.Requests);
  W.writeInt("ok", S.Ok);
  W.writeInt("errors", S.Errors);
  W.writeInt("cache_hits", S.Hits);
  W.writeDouble("hit_rate", S.hitRate());
  W.writeInt("busy_retries", S.BusyRetries);
  W.writeDouble("wall_seconds", S.WallSeconds);
  W.writeDouble("throughput_rps", S.throughputRps());
  W.writeDouble("p50_ms", S.P50Ms);
  W.writeDouble("p99_ms", S.P99Ms);
  W.writeDouble("mean_ms", S.MeanMs);
  W.writeDouble("p50_hit_ms", S.P50HitMs);
  W.writeDouble("p50_miss_ms", S.P50MissMs);
  W.endObject();
}

} // namespace

int main(int argc, char **argv) {
  std::string Host = "127.0.0.1";
  int Port = 4790;
  std::string UnixPath;
  int Count = 200;
  int Passes = 2;
  double RepeatRatio = 0.0;
  int Concurrency = 4;
  uint64_t Seed = 1;
  bool Table1 = false;
  bool ForceCold = false;
  std::string OutFile = "BENCH_served.json";
  double RequireHitRate = -1.0;
  double RequireP50HitMs = -1.0;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (startsWith(Arg, "--connect=")) {
      std::string V = Arg + 10;
      size_t Colon = V.rfind(':');
      if (Colon == std::string::npos) {
        std::fprintf(stderr, "error: --connect needs HOST:PORT\n");
        return 1;
      }
      Host = V.substr(0, Colon);
      Port = std::atoi(V.c_str() + Colon + 1);
    } else if (startsWith(Arg, "--unix=")) {
      UnixPath = Arg + 7;
    } else if (startsWith(Arg, "--count=")) {
      Count = std::atoi(Arg + 8);
    } else if (startsWith(Arg, "--passes=")) {
      Passes = std::atoi(Arg + 9);
    } else if (startsWith(Arg, "--repeat-ratio=")) {
      RepeatRatio = std::atof(Arg + 15);
    } else if (startsWith(Arg, "--concurrency=")) {
      Concurrency = std::atoi(Arg + 14);
    } else if (startsWith(Arg, "--seed=")) {
      Seed = std::strtoull(Arg + 7, nullptr, 10);
    } else if (std::strcmp(Arg, "--table1") == 0) {
      Table1 = true;
    } else if (std::strcmp(Arg, "--force-cold") == 0) {
      ForceCold = true;
    } else if (startsWith(Arg, "--out=")) {
      OutFile = Arg + 6;
    } else if (startsWith(Arg, "--require-hit-rate=")) {
      RequireHitRate = std::atof(Arg + 19);
    } else if (startsWith(Arg, "--require-p50-hit-ms=")) {
      RequireP50HitMs = std::atof(Arg + 21);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      return 1;
    }
  }
  if (Count < 1 || Passes < 1 || Concurrency < 1 || RepeatRatio < 0.0 ||
      RepeatRatio >= 1.0) {
    std::fprintf(stderr, "error: bad count/passes/concurrency/repeat-ratio\n");
    return 1;
  }

  //===--------------------------------------------------------------------===//
  // Build the request corpus.
  //===--------------------------------------------------------------------===//

  // Unique programs: Table I names, or printable GraphGen draws.
  std::vector<std::string> RequestBodies; // JSON "payload" member text.
  if (Table1) {
    static const char *Names[] = {"Bitonic",    "BitonicRec", "DCT",
                                  "DES",        "FFT",        "Filterbank",
                                  "FMRadio",    "MatrixMult"};
    for (const char *N : Names)
      RequestBodies.push_back(std::string("\"benchmark\":\"") + N + "\"");
  } else {
    int Unique = std::max(1, int(double(Count) * (1.0 - RepeatRatio) + 0.5));
    uint64_t S = Seed;
    while (static_cast<int>(RequestBodies.size()) < Unique) {
      GraphSpec Spec = generateGraphSpec(S++);
      DslPrintResult P = printStreamDsl(*buildStream(Spec));
      if (!P.Ok)
        continue; // Rare: spec uses a DSL-inexpressible construct.
      RequestBodies.push_back("\"source\":\"" + JsonWriter::escape(P.Text) +
                              "\"");
    }
  }
  const int Unique = static_cast<int>(RequestBodies.size());

  // The per-pass request sequence: the first Unique requests sweep every
  // program once; the remainder (the repeat fraction) re-draw uniformly.
  const int PerPass = Table1 ? Unique : Count;
  std::vector<int> Sequence(PerPass);
  Rng PickRng(Seed ^ 0x9e3779b97f4a7c15ull);
  for (int I = 0; I < PerPass; ++I)
    Sequence[I] = I < Unique ? I : int(PickRng.nextInt(Unique));

  //===--------------------------------------------------------------------===//
  // Drive the server, pass by pass.
  //===--------------------------------------------------------------------===//

  auto MakeLine = [&](int BodyIdx, int ReqNum, bool NoCache) {
    std::string Line = "{";
    Line += "\"id\":\"r" + std::to_string(ReqNum) + "\",";
    if (NoCache)
      Line += "\"no_cache\":true,";
    Line += RequestBodies[BodyIdx];
    Line += "}";
    return Line;
  };

  std::vector<PassStats> PassResults;
  for (int Pass = 0; Pass < Passes; ++Pass) {
    const bool NoCache = ForceCold && Pass == 0;
    std::vector<RequestResult> Results(Sequence.size());
    std::atomic<int> Next{0};
    std::atomic<bool> ConnectFailed{false};
    auto PassStart = std::chrono::steady_clock::now();

    auto Worker = [&] {
      Client C;
      std::string Err;
      bool Connected = UnixPath.empty() ? C.connectTcp(Host, Port, &Err)
                                        : C.connectUnix(UnixPath, &Err);
      if (!Connected) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        ConnectFailed.store(true);
        return;
      }
      for (;;) {
        int I = Next.fetch_add(1);
        if (I >= static_cast<int>(Sequence.size()))
          return;
        RequestResult &R = Results[I];
        auto Start = std::chrono::steady_clock::now();
        for (;;) {
          std::string Response;
          if (!C.roundTrip(MakeLine(Sequence[I], I, NoCache), &Response)) {
            R.Error = "connection lost";
            break;
          }
          std::optional<JsonValue> Doc = JsonValue::parse(Response);
          const JsonValue *Status =
              Doc && Doc->isObject() ? Doc->find("status") : nullptr;
          if (!Status || !Status->isString()) {
            R.Error = "malformed response";
            break;
          }
          if (Status->asString() == "busy") {
            ++R.BusyRetries;
            int BackoffMs = 50;
            if (const JsonValue *Retry = Doc->find("retry_after_ms"))
              BackoffMs = static_cast<int>(Retry->asNumber());
            std::this_thread::sleep_for(
                std::chrono::milliseconds(BackoffMs));
            continue;
          }
          if (Status->asString() == "ok") {
            R.Ok = true;
            if (const JsonValue *Cache = Doc->find("cache"))
              R.Hit = Cache->asString() == "hit";
          } else if (const JsonValue *E = Doc->find("error")) {
            R.Error = E->asString();
          }
          break;
        }
        R.ClientMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
      }
    };

    std::vector<std::thread> Threads;
    for (int T = 0; T < Concurrency; ++T)
      Threads.emplace_back(Worker);
    for (std::thread &T : Threads)
      T.join();
    if (ConnectFailed.load())
      return 1;

    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - PassStart)
                      .count();
    PassStats S = summarize(Results, Wall);
    PassResults.push_back(S);
    std::printf("pass %d: %d requests, %d ok, %d errors, hit rate %.1f%%, "
                "p50 %.2f ms, p99 %.2f ms, %.1f req/s\n",
                Pass + 1, S.Requests, S.Ok, S.Errors, 100.0 * S.hitRate(),
                S.P50Ms, S.P99Ms, S.throughputRps());
  }

  //===--------------------------------------------------------------------===//
  // Report + assertions.
  //===--------------------------------------------------------------------===//

  const PassStats &First = PassResults.front();
  const PassStats &Last = PassResults.back();
  double P50Improvement =
      Last.P50Ms > 0.0 ? First.P50Ms / Last.P50Ms : 0.0;

  JsonWriter W;
  W.beginObject();
  W.beginObject("config");
  W.writeString("mode", Table1 ? "table1" : "graphgen");
  W.writeInt("unique_programs", Unique);
  W.writeInt("requests_per_pass", PerPass);
  W.writeInt("passes", Passes);
  W.writeDouble("repeat_ratio", RepeatRatio);
  W.writeInt("concurrency", Concurrency);
  W.writeInt("seed", int64_t(Seed));
  W.writeBool("force_cold", ForceCold);
  W.endObject();
  W.beginArray("pass_stats");
  for (const PassStats &S : PassResults)
    writePassJson(W, "", S);
  W.endArray();
  writePassJson(W, "first_pass", First);
  writePassJson(W, "last_pass", Last);
  W.writeDouble("p50_improvement_last_vs_first", P50Improvement);
  W.endObject();

  std::ofstream Out(OutFile, std::ios::trunc);
  Out << W.str() << "\n";
  if (!Out.flush())
    std::fprintf(stderr, "warning: cannot write %s\n", OutFile.c_str());
  else
    std::printf("wrote %s (p50 improvement last/first: %.1fx)\n",
                OutFile.c_str(), P50Improvement);

  if (RequireHitRate >= 0.0 && Last.hitRate() < RequireHitRate) {
    std::fprintf(stderr,
                 "FAIL: last-pass hit rate %.3f below required %.3f\n",
                 Last.hitRate(), RequireHitRate);
    return 2;
  }
  if (RequireP50HitMs >= 0.0 &&
      (Last.Hits == 0 || Last.P50HitMs > RequireP50HitMs)) {
    std::fprintf(stderr,
                 "FAIL: last-pass p50 cache-hit latency %.2f ms over "
                 "required %.2f ms (hits: %d)\n",
                 Last.P50HitMs, RequireP50HitMs, Last.Hits);
    return 2;
  }
  return 0;
}
