//===- tools/sgpu-compile.cpp - Command line compiler driver -----------------===//
//
// Compiles one of the Table I benchmarks (or a built-in demo pipeline)
// through the full paper pipeline and reports the result. Useful for
// eyeballing schedules, dumping DOT graphs and generated CUDA.
//
// Usage:
//   sgpu-compile <benchmark> [--strategy=swp|swpnc|serial]
//                [--coarsening=N] [--sms=N] [--dot] [--cuda]
//                [--schedule] [--trace-out=FILE] [--list]
//
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "codegen/CudaEmitter.h"
#include "core/Compiler.h"
#include "core/ReportWriter.h"
#include "parser/Parser.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace sgpu;
using namespace sgpu::bench;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: sgpu-compile <benchmark>|--file <prog.str> [options]\n"
      "  --strategy=swp|swpnc|serial   execution strategy (default swp)\n"
      "  --timing-model=analytic|cycle kernel timing model (default\n"
      "                                analytic; cycle runs the staged\n"
      "                                warp-level pipeline simulator)\n"
      "  --warp-sched=rr|gto           cycle-sim warp scheduler policy\n"
      "                                (default rr round-robin; gto is\n"
      "                                greedy-then-oldest)\n"
      "  --config-select=auto|analytic|cycle\n"
      "                                which model drives Alg. 7 config\n"
      "                                selection (default auto = follow\n"
      "                                --timing-model)\n"
      "  --schema=global|warp|auto     kernel schema (default global;\n"
      "                                warp puts eligible same-SM edges\n"
      "                                in shared-memory ring queues; auto\n"
      "                                keeps whichever simulates faster)\n"
      "  --machine=gpu|hybrid          processor set to schedule onto\n"
      "                                (default gpu, the paper's SM\n"
      "                                array; hybrid adds the model\n"
      "                                CPU's cores, prices each node per\n"
      "                                class, and turns --coarsening\n"
      "                                into a per-class memory-bounded\n"
      "                                decision variable)\n"
      "  --coarsening=N                SWPn factor (default 8)\n"
      "  --sms=N                       SMs to target (default 16)\n"
      "  --jobs=N                      scheduling-engine workers\n"
      "                                (default: $SGPU_JOBS or all cores)\n"
      "  --dot                         dump the flattened graph as DOT\n"
      "  --cuda                        dump the generated CUDA source\n"
      "  --schedule                    dump the per-SM schedule\n"
      "  --json                        dump the full report as JSON\n"
      "  --trace-out=FILE              write a Chrome trace_event JSON\n"
      "                                file covering the whole compile\n"
      "                                (also: SGPU_TRACE=FILE)\n"
      "  --metrics                     dump the pipeline metrics registry\n"
      "  --list                        list available benchmarks\n");
}

bool startsWith(const char *Arg, const char *Prefix) {
  return std::strncmp(Arg, Prefix, std::strlen(Prefix)) == 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    printUsage();
    return 1;
  }

  std::string Name;
  std::string SourceFile;
  Strategy Strat = Strategy::Swp;
  TimingModelKind Timing = TimingModelKind::Analytic;
  WarpSchedPolicy WarpSched = WarpSchedPolicy::RoundRobin;
  ConfigSelectMode ConfigSelect = ConfigSelectMode::Auto;
  SchemaMode Schema = SchemaMode::Global;
  MachineMode Machine = MachineMode::Gpu;
  int Coarsening = 8;
  int Sms = 16;
  int Jobs = 0; // 0 = auto ($SGPU_JOBS, then hardware_concurrency).
  bool DumpDot = false, DumpCuda = false, DumpSchedule = false;
  bool DumpJson = false, DumpMetrics = false;
  std::string TraceOut;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--list") == 0) {
      for (const BenchmarkSpec &S : allBenchmarks())
        std::printf("%-12s %s\n", S.Name.c_str(), S.Description.c_str());
      return 0;
    }
    if (std::strcmp(Arg, "--file") == 0) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --file needs a path\n");
        return 1;
      }
      SourceFile = argv[++I];
      continue;
    }
    if (startsWith(Arg, "--strategy=")) {
      const char *V = Arg + 11;
      if (std::optional<Strategy> S = parseStrategyName(V)) {
        Strat = *S;
      } else {
        std::fprintf(stderr, "error: unknown strategy '%s'\n", V);
        return 1;
      }
    } else if (startsWith(Arg, "--timing-model=")) {
      const char *V = Arg + 15;
      if (std::optional<TimingModelKind> K = parseTimingModelKind(V)) {
        Timing = *K;
      } else {
        std::fprintf(stderr, "error: unknown timing model '%s'\n", V);
        return 1;
      }
    } else if (startsWith(Arg, "--warp-sched=")) {
      const char *V = Arg + 13;
      if (std::optional<WarpSchedPolicy> P = parseWarpSchedPolicy(V)) {
        WarpSched = *P;
      } else {
        std::fprintf(stderr, "error: unknown warp scheduler '%s'\n", V);
        return 1;
      }
    } else if (startsWith(Arg, "--config-select=")) {
      const char *V = Arg + 16;
      if (std::optional<ConfigSelectMode> M = parseConfigSelectMode(V)) {
        ConfigSelect = *M;
      } else {
        std::fprintf(stderr, "error: unknown config-select mode '%s'\n", V);
        return 1;
      }
    } else if (startsWith(Arg, "--schema=")) {
      const char *V = Arg + 9;
      if (std::optional<SchemaMode> M = parseSchemaMode(V)) {
        Schema = *M;
      } else {
        std::fprintf(stderr, "error: unknown schema '%s'\n", V);
        return 1;
      }
    } else if (startsWith(Arg, "--machine=")) {
      const char *V = Arg + 10;
      if (std::optional<MachineMode> M = parseMachineMode(V)) {
        Machine = *M;
      } else {
        std::fprintf(stderr, "error: unknown machine '%s'\n", V);
        return 1;
      }
    } else if (startsWith(Arg, "--coarsening=")) {
      Coarsening = std::atoi(Arg + 13);
      if (Coarsening < 1) {
        std::fprintf(stderr, "error: coarsening must be positive\n");
        return 1;
      }
    } else if (startsWith(Arg, "--sms=")) {
      Sms = std::atoi(Arg + 6);
      if (Sms < 1 || Sms > 16) {
        std::fprintf(stderr, "error: sms must be in [1, 16]\n");
        return 1;
      }
    } else if (startsWith(Arg, "--jobs=")) {
      Jobs = std::atoi(Arg + 7);
      if (Jobs < 0) {
        std::fprintf(stderr, "error: jobs must be >= 0\n");
        return 1;
      }
    } else if (std::strcmp(Arg, "--dot") == 0) {
      DumpDot = true;
    } else if (std::strcmp(Arg, "--cuda") == 0) {
      DumpCuda = true;
    } else if (std::strcmp(Arg, "--schedule") == 0) {
      DumpSchedule = true;
    } else if (std::strcmp(Arg, "--json") == 0) {
      DumpJson = true;
    } else if (std::strcmp(Arg, "--metrics") == 0) {
      DumpMetrics = true;
    } else if (startsWith(Arg, "--trace-out=")) {
      TraceOut = Arg + 12;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage();
      return 1;
    } else {
      Name = Arg;
    }
  }

  if (TraceOut.empty())
    traceInitFromEnv(&TraceOut);
  if (!TraceOut.empty()) {
    traceSetEnabled(true);
    traceSetThreadName("main");
  }
  auto FlushTrace = [&TraceOut] {
    if (TraceOut.empty())
      return;
    if (!traceWriteFile(TraceOut))
      std::fprintf(stderr, "warning: cannot write trace file '%s'\n",
                   TraceOut.c_str());
  };
  auto DumpMetricsNow = [DumpMetrics] {
    if (!DumpMetrics)
      return;
    JsonWriter W;
    W.beginObject();
    MetricsRegistry::global().writeJson(W);
    W.endObject();
    std::printf("%s\n", W.str().c_str());
  };

  std::string ProgramName;
  StreamPtr Parsed;
  if (!SourceFile.empty()) {
    std::ifstream In(SourceFile);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   SourceFile.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    ParseDiagnostic Diag;
    Parsed = parseStreamProgram(Buf.str(), &Diag);
    if (!Parsed) {
      std::fprintf(stderr, "%s: %s\n", SourceFile.c_str(),
                   Diag.str().c_str());
      return 1;
    }
    ProgramName = SourceFile;
  } else {
    const BenchmarkSpec *Spec = findBenchmark(Name);
    if (!Spec) {
      std::fprintf(stderr,
                   "error: unknown benchmark '%s' (try --list)\n",
                   Name.c_str());
      return 1;
    }
    Parsed = Spec->Build();
    ProgramName = Spec->Name;
  }

  StreamGraph G = flatten(*Parsed);
  if (DumpDot) {
    std::fputs(G.toDot(ProgramName).c_str(), stdout);
    return 0;
  }

  CompileOptions Options;
  Options.Strat = Strat;
  Options.Timing = Timing;
  Options.WarpSched = WarpSched;
  Options.ConfigSelect = ConfigSelect;
  Options.Schema = Schema;
  Options.Machine = Machine;
  Options.Coarsening = Coarsening;
  Options.Sched.Pmax = Sms;
  Options.Sched.NumWorkers = Jobs;
  std::optional<CompileReport> R = compileForGpu(G, Options);
  if (!R) {
    std::fprintf(stderr, "error: compilation failed\n");
    FlushTrace();
    return 1;
  }

  if (DumpJson) {
    std::printf("%s\n", reportToJson(G, *R).c_str());
    DumpMetricsNow();
    FlushTrace();
    return 0;
  }

  std::printf("%s under %s (coarsening %d, %d SMs, %s machine, "
              "%s timing)\n",
              ProgramName.c_str(), strategyName(Strat), R->Coarsening, Sms,
              machineModeName(Machine), timingModelKindName(Timing));
  if (Machine == MachineMode::Hybrid)
    std::printf("  machine          : %d SMs + %d CPU cores, "
                "%d instances host-resident\n",
                R->MachineDesc.numGpuSms(),
                R->MachineDesc.totalProcs() - R->MachineDesc.numGpuSms(),
                R->CpuResidentInstances);
  std::printf("  graph            : %d nodes, %d edges, %d peeking\n",
              G.numNodes(), G.numEdges(), G.numPeekingFilters());
  std::printf("  execution config : regs<=%d, %d-thread blocks\n",
              R->Config.RegLimit, R->Config.NumThreads);
  if (Strat != Strategy::Serial) {
    std::printf("  schedule         : II=%.1f (MII %.1f, +%.2f%%), "
                "stage span %lld\n",
                R->SchedStats.FinalII, R->SchedStats.MII,
                R->SchedStats.RelaxationPercent,
                static_cast<long long>(R->Schedule.stageSpan()));
    std::printf("  solver           : %d II attempts, %d B&B nodes, "
                "%s path\n",
                R->SchedStats.IIAttempts, R->SchedStats.SolverNodes,
                R->SchedStats.UsedIlp ? "ILP" : "heuristic");
    std::printf("  solver core      : %lld LP solves, %lld pivots, "
                "%d workers, %.3fs solver wall\n",
                static_cast<long long>(R->SchedStats.SolverLpSolves),
                static_cast<long long>(R->SchedStats.SolverPivots),
                R->SchedStats.WorkersUsed, R->SchedStats.SolverSeconds);
  }
  if (Strat != Strategy::Serial)
    std::printf("  schema           : %s requested, %s selected "
                "(%d queue edges, %lld shared bytes)\n",
                schemaModeName(R->RequestedSchema),
                schemaKindName(R->Schema.Kind), R->Schema.numQueueEdges(),
                static_cast<long long>(R->Schema.SharedQueueBytes));
  std::printf("  buffers          : %lld bytes\n",
              static_cast<long long>(R->BufferBytes));
  std::printf("  kernel sim       : %.0f cycles/invocation, "
              "%.0f fill cycles, %.0f transactions\n",
              R->KernelSim.TotalCycles, R->KernelSim.FillCycles,
              R->KernelSim.Transactions);
  std::printf("  speedup vs CPU   : %.2fx\n", R->Speedup);

  if (DumpSchedule && Strat != Strategy::Serial) {
    std::printf("\nPer-SM schedule (o-order):\n");
    for (int P = 0; P < R->Schedule.Pmax; ++P) {
      auto Order = R->Schedule.smOrder(P);
      if (Order.empty())
        continue;
      std::printf("  SM%-2d:", P);
      for (const ScheduledInstance *SI : Order)
        std::printf(" %s[k%lld o%.0f f%lld]",
                    G.node(SI->Node).Name.c_str(),
                    static_cast<long long>(SI->K), SI->O,
                    static_cast<long long>(SI->F));
      std::printf("\n");
    }
  }
  if (DumpSchedule && !R->KernelSim.PerSm.empty()) {
    std::printf("\nPer-SM cycle breakdown (%s model):\n",
                timingModelKindName(R->Timing));
    for (size_t P = 0; P < R->KernelSim.PerSm.size(); ++P) {
      const SmBreakdown &B = R->KernelSim.PerSm[P];
      if (B.TotalCycles <= 0.0)
        continue;
      std::printf("  SM%-2zu: total %10.0f  busy %10.0f  stall %10.0f  "
                  "%8lld instrs  %8lld txns\n",
                  P, B.TotalCycles, B.BusyCycles, B.StallCycles,
                  static_cast<long long>(B.WarpInstrs),
                  static_cast<long long>(B.Transactions));
    }
  }

  if (DumpCuda && Strat != Strategy::Serial) {
    auto SS = SteadyState::compute(G);
    CudaEmitOptions EmitOpts;
    EmitOpts.Layout = R->Layout;
    EmitOpts.Coarsening = Coarsening;
    std::fputs(createKernelSchema(R->Schema.Kind)
                   ->emit(G, *SS, R->Config, R->GSS, R->Schedule, R->Schema,
                          EmitOpts)
                   .c_str(),
               stdout);
  }
  DumpMetricsNow();
  FlushTrace();
  return 0;
}
