//===- tools/sgpu-fuzz.cpp - Differential fuzzing driver ---------------------===//
//
// Generates random stream programs and pushes each one through the full
// oracle suite (see testing/Oracles.h): every scheduling strategy and
// buffer layout must agree with the interpreter reference bit for bit,
// schedules must verify, and the metamorphic properties (coarsening,
// rate scaling, timing-model layout ordering) must hold. On a violation
// the delta-debugging reducer shrinks the program and a standalone .str
// repro is written that replays through `sgpu-compile --file`.
//
// Usage:
//   sgpu-fuzz [--seed=N] [--count=N] [--jobs=N]
//             [--timing-model=analytic|cycle|both] [--warp-sched=rr|gto]
//             [--sms=N] [--depth=N]
//             [--no-ilp] [--no-metamorphic] [--roundrobin] [--float]
//             [--stateful] [--inject-bug=KIND] [--no-minimize]
//             [--out-dir=DIR] [--replay=FILE]
//   sgpu-fuzz --parser [--corpus=DIR] [--seed=N] [--count=N]
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "testing/DslPrinter.h"
#include "testing/GraphGen.h"
#include "testing/Oracles.h"
#include "testing/Reducer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace sgpu;
using namespace sgpu::testing;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: sgpu-fuzz [options]\n"
      "  --seed=N                      first seed (default 1)\n"
      "  --count=N                     number of seeds (default 100)\n"
      "  --jobs=N                      parallel seeds (default: $SGPU_JOBS\n"
      "                                or all cores; results are\n"
      "                                per-seed deterministic either way)\n"
      "  --timing-model=analytic|cycle|both\n"
      "                                timing model for the kernel-level\n"
      "                                oracles (default analytic)\n"
      "  --warp-sched=rr|gto           warp-scheduler policy for the cycle\n"
      "                                model oracles (default rr)\n"
      "  --schema=global|warp|auto     kernel schema under differential\n"
      "                                test (default global; warp/auto\n"
      "                                re-run every schedule with the\n"
      "                                warp-specialized queue assignment\n"
      "                                against the interpreter)\n"
      "  --machine=gpu|hybrid          processor set under differential\n"
      "                                test (default gpu; hybrid adds the\n"
      "                                model CPU's cores and runs the\n"
      "                                class-indexed formulation)\n"
      "  --sms=N                       SMs to schedule onto (default 4)\n"
      "  --depth=N                     max nesting depth (default 2)\n"
      "  --no-ilp                      heuristic-only variants\n"
      "  --no-metamorphic              differential oracles only\n"
      "  --roundrobin / --float / --stateful\n"
      "                                enable generator extensions\n"
      "  --inject-bug=KIND             corrupt each schedule before\n"
      "                                verification (swap-slots, exceed-ii,\n"
      "                                double-assign, bad-sm,\n"
      "                                drop-instance); every seed must\n"
      "                                then FAIL (self-test mode)\n"
      "  --no-minimize                 skip delta-debugging on failures\n"
      "  --out-dir=DIR                 where .str repros go (default .)\n"
      "  --replay=FILE                 run the oracles over one .str file\n"
      "  --parser                      parser robustness mode: corpus\n"
      "                                files and byte-mutated programs\n"
      "                                must parse or diagnose, never crash\n"
      "  --corpus=DIR                  .str corpus for --parser mode\n");
}

struct FuzzConfig {
  uint64_t Seed = 1;
  int Count = 100;
  int Jobs = 0;
  bool Both = false; // --timing-model=both
  bool Minimize = true;
  bool ParserMode = false;
  std::string OutDir = ".";
  std::string ReplayFile;
  std::string CorpusDir;
  GraphGenOptions Gen;
  OracleOptions Oracle;
};

/// The outcome of one seed, buffered so the parallel sweep can print in
/// seed order.
struct SeedResult {
  OracleReport Report;
  std::string ReproPath; ///< Written .str repro, when minimized.
  std::string Log;       ///< Extra per-seed lines (reduction trace).
};

std::string failureSummary(const OracleReport &R) {
  std::ostringstream Os;
  for (const OracleFailure &F : R.Failures)
    Os << "  [" << F.Oracle << "] " << F.Message << "\n";
  return Os.str();
}

/// Writes a minimized repro with a header that still parses (the lexer
/// accepts // comments), so the file replays through both
/// `sgpu-compile --file` and `sgpu-fuzz --replay`.
bool writeRepro(const FuzzConfig &C, const OracleReport &R,
                const GraphSpec &Spec, std::string &PathOut,
                std::string &Err) {
  StreamPtr S = buildStream(Spec);
  DslPrintResult P = printStreamDsl(*S);
  if (!P.Ok) {
    Err = "printing repro failed: " + P.Error;
    return false;
  }
  std::error_code Ec;
  std::filesystem::create_directories(C.OutDir, Ec);
  PathOut = C.OutDir + "/sgpu-fuzz-repro-" + std::to_string(R.Seed) + ".str";
  std::ofstream Out(PathOut);
  if (!Out) {
    Err = "cannot open " + PathOut;
    return false;
  }
  Out << "// sgpu-fuzz repro: seed " << R.Seed << ", oracle \""
      << R.firstOracle() << "\"\n";
  for (const OracleFailure &F : R.Failures)
    Out << "//   [" << F.Oracle << "] " << F.Message << "\n";
  Out << "// replay: sgpu-fuzz --replay=" << PathOut << " --seed="
      << R.Seed << "\n";
  Out << P.Text;
  return Out.good();
}

SeedResult runSeed(const FuzzConfig &C, uint64_t Seed) {
  SeedResult SR;
  GraphSpec Spec = generateGraphSpec(Seed, C.Gen);
  SR.Report = runOraclesOnSpec(Spec, C.Oracle);
  if (C.Both && SR.Report.ok()) {
    OracleOptions O2 = C.Oracle;
    O2.Timing = C.Oracle.Timing == TimingModelKind::Analytic
                    ? TimingModelKind::Cycle
                    : TimingModelKind::Analytic;
    OracleReport R2 = runOraclesOnSpec(Spec, O2);
    SR.Report.ChecksRun += R2.ChecksRun;
    SR.Report.Failures.insert(SR.Report.Failures.end(), R2.Failures.begin(),
                              R2.Failures.end());
  }
  if (SR.Report.ok() || !C.Minimize)
    return SR;

  // Shrink while the same oracle keeps firing first; pinning the oracle
  // name stops the shrink drifting onto an unrelated violation.
  std::string Key = SR.Report.firstOracle();
  ReduceResult Red = reduceSpec(
      Spec,
      [&](const GraphSpec &Cand) {
        return runOraclesOnSpec(Cand, C.Oracle).firstOracle() == Key;
      });
  std::ostringstream Log;
  Log << "  minimized: " << countFilters(Spec.Root) << " -> "
      << countFilters(Red.Spec.Root) << " filters (" << Red.StepsApplied
      << " steps, " << Red.CandidatesTried << " candidates)\n";
  std::string Err;
  if (writeRepro(C, SR.Report, Red.Spec, SR.ReproPath, Err))
    Log << "  repro: " << SR.ReproPath << "\n";
  else
    Log << "  repro: " << Err << "\n";
  SR.Log = Log.str();
  return SR;
}

int runSweep(const FuzzConfig &C) {
  std::vector<SeedResult> Results(static_cast<size_t>(C.Count));
  parallelFor(0, C.Count, C.Jobs, [&](int I) {
    Results[static_cast<size_t>(I)] =
        runSeed(C, C.Seed + static_cast<uint64_t>(I));
  });

  int Violations = 0;
  long ChecksRun = 0;
  for (const SeedResult &SR : Results) {
    ChecksRun += SR.Report.ChecksRun;
    if (SR.Report.ok())
      continue;
    ++Violations;
    std::printf("FAIL %s\n%s%s", SR.Report.Description.c_str(),
                failureSummary(SR.Report).c_str(), SR.Log.c_str());
  }

  if (C.Oracle.InjectBug != ScheduleBugKind::None) {
    // Fault-injection self-test: the corrupted schedules must be caught.
    // swap-slots is opportunistic — exchanging two same-SM o slots often
    // yields a different-but-legal schedule — so it only has to land at
    // least once; the other corruptions are illegal by construction.
    int Caught = 0;
    for (const SeedResult &SR : Results)
      if (!SR.Report.ok())
        ++Caught;
    int Need =
        C.Oracle.InjectBug == ScheduleBugKind::SwapSlots ? 1 : C.Count;
    std::printf("sgpu-fuzz: inject-bug=%s: %d/%d seeds caught (need %d)\n",
                scheduleBugKindName(C.Oracle.InjectBug), Caught, C.Count,
                Need);
    return Caught >= Need ? 0 : 1;
  }

  std::printf("sgpu-fuzz: %d seeds (%llu..%llu), %ld checks, %d violations\n",
              C.Count, static_cast<unsigned long long>(C.Seed),
              static_cast<unsigned long long>(C.Seed + C.Count - 1),
              ChecksRun, Violations);
  return Violations == 0 ? 0 : 1;
}

int runReplay(const FuzzConfig &C) {
  std::ifstream In(C.ReplayFile);
  if (!In) {
    std::fprintf(stderr, "sgpu-fuzz: cannot open %s\n", C.ReplayFile.c_str());
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  ParseDiagnostic Diag;
  StreamPtr S = parseStreamProgram(Buf.str(), &Diag);
  if (!S) {
    std::fprintf(stderr, "sgpu-fuzz: %s: %s\n", C.ReplayFile.c_str(),
                 Diag.str().c_str());
    return 1;
  }
  OracleReport R = runOraclesOnStream(*S, C.Seed, C.Oracle);
  if (!R.ok()) {
    std::printf("FAIL %s\n%s", C.ReplayFile.c_str(),
                failureSummary(R).c_str());
    return 1;
  }
  std::printf("sgpu-fuzz: %s: %d checks, no violations\n",
              C.ReplayFile.c_str(), R.ChecksRun);
  return 0;
}

/// Parses \p Source and requires a clean outcome: either a stream or a
/// diagnostic. A crash here takes the whole process down, which is
/// exactly the signal --parser mode exists to surface.
bool parseNeverCrashes(const std::string &Source, bool &Parsed) {
  ParseDiagnostic Diag;
  StreamPtr S = parseStreamProgram(Source, &Diag);
  Parsed = S != nullptr;
  return Parsed || !Diag.Message.empty();
}

int runParserMode(const FuzzConfig &C) {
  int Files = 0, ParsedOk = 0, Diagnosed = 0, Bad = 0;

  // 1. Corpus files: every .str must parse or produce a diagnostic.
  if (!C.CorpusDir.empty()) {
    std::error_code Ec;
    for (const auto &Entry :
         std::filesystem::directory_iterator(C.CorpusDir, Ec)) {
      if (Entry.path().extension() != ".str")
        continue;
      ++Files;
      std::ifstream In(Entry.path());
      std::ostringstream Buf;
      Buf << In.rdbuf();
      bool Parsed = false;
      if (!parseNeverCrashes(Buf.str(), Parsed)) {
        std::printf("FAIL %s: no stream and no diagnostic\n",
                    Entry.path().string().c_str());
        ++Bad;
      } else {
        ++(Parsed ? ParsedOk : Diagnosed);
      }
    }
    if (Ec) {
      std::fprintf(stderr, "sgpu-fuzz: cannot read corpus %s\n",
                   C.CorpusDir.c_str());
      return 1;
    }
  }

  // 2. Byte-mutation fuzzing: print a generated program, then corrupt it
  //    (flip bytes, splice, truncate) and reparse. Any input must either
  //    parse or diagnose; the interesting failure mode is a crash.
  int Mutants = 0;
  for (int I = 0; I < C.Count; ++I) {
    uint64_t Seed = C.Seed + static_cast<uint64_t>(I);
    GraphSpec Spec = generateGraphSpec(Seed, C.Gen);
    StreamPtr S = buildStream(Spec);
    DslPrintResult P = printStreamDsl(*S);
    if (!P.Ok)
      continue;
    Rng R(Seed ^ 0x9e3779b97f4a7c15ull);
    for (int M = 0; M < 32; ++M) {
      std::string Text = P.Text;
      switch (R.nextInt(4)) {
      case 0: { // Flip a byte to random junk (including NUL).
        if (!Text.empty())
          Text[static_cast<size_t>(R.nextInt(static_cast<int>(Text.size())))] =
              static_cast<char>(R.nextInt(256));
        break;
      }
      case 1: { // Truncate.
        Text.resize(static_cast<size_t>(
            R.nextInt(static_cast<int>(Text.size()) + 1)));
        break;
      }
      case 2: { // Duplicate a random slice somewhere else.
        if (Text.size() > 2) {
          size_t A = static_cast<size_t>(
              R.nextInt(static_cast<int>(Text.size())));
          size_t Len = static_cast<size_t>(R.nextInt(64) + 1);
          Len = std::min(Len, Text.size() - A);
          size_t At = static_cast<size_t>(
              R.nextInt(static_cast<int>(Text.size())));
          Text.insert(At, Text.substr(A, Len));
        }
        break;
      }
      default: { // Delete a random slice.
        if (!Text.empty()) {
          size_t A = static_cast<size_t>(
              R.nextInt(static_cast<int>(Text.size())));
          size_t Len = static_cast<size_t>(R.nextInt(64) + 1);
          Len = std::min(Len, Text.size() - A);
          Text.erase(A, Len);
        }
        break;
      }
      }
      ++Mutants;
      bool Parsed = false;
      if (!parseNeverCrashes(Text, Parsed)) {
        std::printf("FAIL mutant (seed %llu, round %d): "
                    "no stream and no diagnostic\n",
                    static_cast<unsigned long long>(Seed), M);
        ++Bad;
      }
    }
  }

  std::printf("sgpu-fuzz --parser: %d corpus files (%d parse, %d diagnose), "
              "%d mutants, %d failures\n",
              Files, ParsedOk, Diagnosed, Mutants, Bad);
  return Bad == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  FuzzConfig C;
  // Value-taking flags accept both --flag=V and --flag V.
  std::string Val;
  auto takesValue = [&](int &I, const char *Flag) -> bool {
    const char *Arg = argv[I];
    size_t Len = std::strlen(Flag);
    if (std::strncmp(Arg, Flag, Len) != 0)
      return false;
    if (Arg[Len] == '=') {
      Val = Arg + Len + 1;
      return true;
    }
    if (Arg[Len] == '\0' && I + 1 < argc) {
      Val = argv[++I];
      return true;
    }
    return false;
  };
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (takesValue(I, "--seed")) {
      C.Seed = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (takesValue(I, "--count")) {
      C.Count = std::atoi(Val.c_str());
    } else if (takesValue(I, "--jobs")) {
      C.Jobs = std::atoi(Val.c_str());
    } else if (takesValue(I, "--timing-model")) {
      if (Val == "analytic") {
        C.Oracle.Timing = TimingModelKind::Analytic;
      } else if (Val == "cycle") {
        C.Oracle.Timing = TimingModelKind::Cycle;
      } else if (Val == "both") {
        C.Oracle.Timing = TimingModelKind::Analytic;
        C.Both = true;
      } else {
        std::fprintf(stderr, "sgpu-fuzz: unknown timing model '%s'\n",
                     Val.c_str());
        return 2;
      }
    } else if (takesValue(I, "--warp-sched")) {
      auto Policy = parseWarpSchedPolicy(Val);
      if (!Policy) {
        std::fprintf(stderr, "sgpu-fuzz: unknown warp scheduler '%s'\n",
                     Val.c_str());
        return 2;
      }
      C.Oracle.WarpSched = *Policy;
    } else if (takesValue(I, "--schema")) {
      auto Mode = parseSchemaMode(Val);
      if (!Mode) {
        std::fprintf(stderr, "sgpu-fuzz: unknown schema '%s'\n",
                     Val.c_str());
        return 2;
      }
      C.Oracle.Schema = *Mode;
    } else if (takesValue(I, "--machine")) {
      auto Mode = parseMachineMode(Val);
      if (!Mode) {
        std::fprintf(stderr, "sgpu-fuzz: unknown machine '%s'\n",
                     Val.c_str());
        return 2;
      }
      C.Oracle.Machine = *Mode;
    } else if (takesValue(I, "--sms")) {
      C.Oracle.Pmax = std::atoi(Val.c_str());
    } else if (takesValue(I, "--depth")) {
      C.Gen.MaxDepth = std::atoi(Val.c_str());
    } else if (std::strcmp(Arg, "--no-ilp") == 0) {
      C.Oracle.RunIlp = false;
    } else if (std::strcmp(Arg, "--no-metamorphic") == 0) {
      C.Oracle.RunMetamorphic = false;
      C.Oracle.RunTimingOrdering = false;
    } else if (std::strcmp(Arg, "--roundrobin") == 0) {
      C.Gen.AllowRoundRobin = true;
    } else if (std::strcmp(Arg, "--float") == 0) {
      C.Gen.AllowFloat = true;
    } else if (std::strcmp(Arg, "--stateful") == 0) {
      C.Gen.AllowStateful = true;
    } else if (takesValue(I, "--inject-bug")) {
      auto Kind = parseScheduleBugKind(Val);
      if (!Kind) {
        std::fprintf(stderr, "sgpu-fuzz: unknown bug kind '%s'\n",
                     Val.c_str());
        return 2;
      }
      C.Oracle.InjectBug = *Kind;
    } else if (std::strcmp(Arg, "--no-minimize") == 0) {
      C.Minimize = false;
    } else if (takesValue(I, "--out-dir")) {
      C.OutDir = Val;
    } else if (takesValue(I, "--replay")) {
      C.ReplayFile = Val;
    } else if (std::strcmp(Arg, "--parser") == 0) {
      C.ParserMode = true;
    } else if (takesValue(I, "--corpus")) {
      C.CorpusDir = Val;
    } else if (std::strcmp(Arg, "--help") == 0 ||
               std::strcmp(Arg, "-h") == 0) {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "sgpu-fuzz: unknown argument '%s'\n", Arg);
      printUsage();
      return 2;
    }
  }
  if (C.Count <= 0) {
    std::fprintf(stderr, "sgpu-fuzz: --count must be positive\n");
    return 2;
  }

  if (!C.ReplayFile.empty())
    return runReplay(C);
  if (C.ParserMode)
    return runParserMode(C);
  return runSweep(C);
}
