//===- tools/sgpu-served.cpp - Scheduling-as-a-service daemon ----------------===//
//
// Long-running compile server: accepts newline-delimited JSON compile
// requests (.str source or a Table I benchmark name, plus options) over
// a loopback TCP or Unix-domain socket, solves them on a worker pool and
// serves repeats from a content-addressed schedule cache. The protocol
// is specified in docs/PROTOCOL.md; DESIGN.md "Scheduling as a service"
// describes the cache and admission-control policies.
//
// Usage:
//   sgpu-served [--port=N] [--unix=PATH] [--cache-dir=DIR]
//               [--cache-bytes=N] [--jobs=N] [--max-queue=N]
//               [--retry-after-ms=N] [--trace-out=FILE] [--metrics]
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "service/Service.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>
#include <thread>

using namespace sgpu;
using namespace sgpu::service;

namespace {

std::atomic<bool> GotSignal{false};

void onSignal(int) { GotSignal.store(true); }

void printUsage() {
  std::fprintf(
      stderr,
      "usage: sgpu-served [options]\n"
      "  --port=N            TCP port on 127.0.0.1 (default 4790; 0 = any\n"
      "                      free port, printed on startup)\n"
      "  --unix=PATH         serve a Unix-domain socket instead of TCP\n"
      "  --cache-dir=DIR     persist cache entries under DIR (default\n"
      "                      sgpu-cache; --cache-dir= empty disables disk)\n"
      "  --cache-bytes=N     in-memory cache budget in bytes\n"
      "                      (default 268435456)\n"
      "  --jobs=N            compile workers (default: $SGPU_JOBS or cores)\n"
      "  --max-queue=N       shed new solves beyond this many queued+running\n"
      "                      (default 16)\n"
      "  --retry-after-ms=N  back-off hint in busy responses (default 250)\n"
      "  --trace-out=FILE    write a Chrome trace on shutdown (also:\n"
      "                      SGPU_TRACE=FILE)\n"
      "  --metrics           dump the metrics registry on shutdown\n");
}

bool startsWith(const char *Arg, const char *Prefix) {
  return std::strncmp(Arg, Prefix, std::strlen(Prefix)) == 0;
}

} // namespace

int main(int argc, char **argv) {
  ServiceOptions SvcOpts;
  SvcOpts.Cache.Dir = "sgpu-cache";
  ServerOptions SrvOpts;
  bool DumpMetrics = false;
  std::string TraceOut;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (startsWith(Arg, "--port=")) {
      SrvOpts.Port = std::atoi(Arg + 7);
      if (SrvOpts.Port < 0 || SrvOpts.Port > 65535) {
        std::fprintf(stderr, "error: bad port\n");
        return 1;
      }
    } else if (startsWith(Arg, "--unix=")) {
      SrvOpts.UnixPath = Arg + 7;
    } else if (startsWith(Arg, "--cache-dir=")) {
      SvcOpts.Cache.Dir = Arg + 12;
    } else if (startsWith(Arg, "--cache-bytes=")) {
      SvcOpts.Cache.MaxBytes = std::atoll(Arg + 14);
      if (SvcOpts.Cache.MaxBytes < 1) {
        std::fprintf(stderr, "error: cache-bytes must be positive\n");
        return 1;
      }
    } else if (startsWith(Arg, "--jobs=")) {
      SvcOpts.Workers = std::atoi(Arg + 7);
      if (SvcOpts.Workers < 0) {
        std::fprintf(stderr, "error: jobs must be >= 0\n");
        return 1;
      }
    } else if (startsWith(Arg, "--max-queue=")) {
      SvcOpts.MaxQueue = std::atoi(Arg + 12);
      if (SvcOpts.MaxQueue < 1) {
        std::fprintf(stderr, "error: max-queue must be positive\n");
        return 1;
      }
    } else if (startsWith(Arg, "--retry-after-ms=")) {
      SvcOpts.RetryAfterMs = std::atoi(Arg + 17);
    } else if (startsWith(Arg, "--trace-out=")) {
      TraceOut = Arg + 12;
    } else if (std::strcmp(Arg, "--metrics") == 0) {
      DumpMetrics = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      printUsage();
      return 1;
    }
  }

  if (TraceOut.empty())
    traceInitFromEnv(&TraceOut);
  if (!TraceOut.empty()) {
    traceSetEnabled(true);
    traceSetThreadName("main");
  }

  Service Svc(SvcOpts);
  Server Srv(Svc, SrvOpts);
  std::string Err;
  if (!Srv.start(&Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN); // A dropped client must not kill us.
#endif

  std::printf("sgpu-served listening on %s (cache %s, %d-deep queue)\n",
              Srv.endpoint().c_str(),
              SvcOpts.Cache.Dir.empty() ? "memory-only"
                                        : SvcOpts.Cache.Dir.c_str(),
              SvcOpts.MaxQueue);
  std::fflush(stdout);

  while (!GotSignal.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::printf("sgpu-served: shutting down\n");
  Srv.stop();

  if (DumpMetrics) {
    JsonWriter W;
    W.beginObject();
    MetricsRegistry::global().writeJson(W);
    W.endObject();
    std::printf("%s\n", W.str().c_str());
  }
  if (!TraceOut.empty() && !traceWriteFile(TraceOut))
    std::fprintf(stderr, "warning: cannot write trace file '%s'\n",
                 TraceOut.c_str());
  return 0;
}
